// Package phased is the streaming phase-prediction service: the
// repo's monitoring stack (classifier, predictors, DVFS translation)
// served over a TCP wire protocol instead of linked into the
// workload's process.
//
// Each connection carries one or more sessions. A session opens with a
// Hello frame naming a predictor spec (core.PredictorSpec grammar,
// optionally with governor's "mon:" prefix) and the sampling
// granularity; the server builds that predictor, answers with an Ack,
// and from then on every Sample frame (raw PMC counters for one
// interval: uops, memory transactions, cycles, wall time) is answered
// by a Prediction frame carrying the classified actual phase, the
// predicted next phase, its phase.Class, and the DVFS setting the
// paper's Table 2 translation assigns it. The arithmetic feeding the
// monitor is byte-for-byte the kernel module's, so a streamed session
// is bit-identical to a local simulated run over the same counters —
// the property the loopback tests and cmd/phasefeed -check enforce.
//
// Scheduling mirrors the fleet engine's determinism discipline:
// sessions are pinned to a fixed worker pool by FNV-1a hash of the
// session id, so one session's samples are always processed in order
// by one goroutine. Backpressure is bounded per-session queues with a
// drop-oldest policy (the freshest window of samples survives; the
// cumulative eviction count rides on every Prediction), read deadlines
// bound idle connections, write deadlines disconnect clients too slow
// to take their predictions, and per-IP session caps bound fan-in.
// Shutdown drains: queued samples flush, every open session gets a
// Drain frame, then connections close.
package phased

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"phasemon/internal/agg"
	"phasemon/internal/core"
	"phasemon/internal/dvfs"
	"phasemon/internal/governor"
	"phasemon/internal/phase"
	"phasemon/internal/telemetry"
	"phasemon/internal/wire"
)

// Config parameterizes a Server. The zero value is fully usable.
type Config struct {
	// NodeID identifies this node in the Rollup frames it emits; a
	// fleet's phasetop merges streams from many nodes by this id.
	NodeID uint64
	// Workers is the prediction worker pool size; sessions are pinned
	// to workers by session-id hash. Zero selects 4.
	Workers int
	// QueueDepth bounds each session's pending-sample queue; overflow
	// evicts the oldest sample (drop-oldest). Zero selects 64.
	QueueDepth int
	// MaxSessionsPerIP caps concurrent sessions per client IP. Zero
	// selects 64; negative means unlimited.
	MaxSessionsPerIP int
	// ReadTimeout bounds the gap between reads on a connection; idle
	// connections past it are closed. Zero selects 30s; negative
	// disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write; clients too slow to drain
	// their predictions are disconnected. Zero selects 5s; negative
	// disables the deadline.
	WriteTimeout time.Duration
	// FlushInterval bounds how long a batching connection's write
	// coalescer may hold a buffered prediction before flushing — the
	// reply-latency budget batching trades throughput against. Zero
	// selects 500µs; negative disables coalescing-by-time entirely
	// (every prediction flushes immediately, still batch-framed).
	// Connections that never negotiate wire.FlagBatch are unaffected.
	FlushInterval time.Duration
	// FlushBytes is the coalescer's size threshold: a pending reply
	// batch whose encoded size reaches it flushes without waiting for
	// the interval. Zero selects 32 KiB; the effective threshold is
	// clamped to one wire.MaxPayload batch frame.
	FlushBytes int
	// RollupBucket is the rollup pipeline's time-bucket length: every
	// served, shed, or dropped sample is accumulated into the bucket
	// covering its instant. Zero selects 1s.
	RollupBucket time.Duration
	// RollupFlush is the period of the flusher that emits closed
	// buckets as Rollup frames (to subscribers and the node's own
	// merged /rollup view). Zero selects 1s.
	RollupFlush time.Duration
	// Classifier defines the phase taxonomy for every session; nil
	// selects the paper's Table 1 (phase.Default).
	Classifier phase.Classifier
	// Telemetry observes the server when non-nil (the phasemon_phased_*
	// instrument family plus the per-session monitors' accuracy
	// counters). Nil serves unobserved.
	Telemetry *telemetry.Hub
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxSessionsPerIP == 0 {
		c.MaxSessionsPerIP = 64
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Microsecond
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 32 << 10
	}
	if c.RollupBucket <= 0 {
		c.RollupBucket = time.Duration(agg.DefaultBucketLenNs)
	}
	if c.RollupFlush <= 0 {
		c.RollupFlush = time.Second
	}
	if c.Classifier == nil {
		c.Classifier = phase.Default()
	}
	return c
}

// Server is the phase-prediction service. Construct with New, start
// with Start or Serve, stop with Shutdown (it implements Drainable).
type Server struct {
	cfg   Config
	trans *dvfs.Translation
	clock telemetry.Clock
	// flushThreshold is FlushBytes expressed in predictions per batch,
	// clamped to one frame; precomputed so the coalescer's hot path is
	// a single integer compare.
	flushThreshold int

	workers []*worker
	wg      sync.WaitGroup // worker goroutines
	connWG  sync.WaitGroup // per-connection reader goroutines

	// Rollup pipeline: workers ingest per-sample outcomes into agg
	// (one shard per worker), the flusher goroutine periodically emits
	// closed buckets as Rollup frames to subscribed connections and
	// folds them into merger, the node's own fleet view (/rollup).
	agg     *agg.Aggregator
	merger  *agg.Merger
	scratch []wire.Rollup // flusher-owned copy-out buffer

	mu         sync.Mutex
	ln         net.Listener             // guarded by mu
	conns      map[*serverConn]struct{} // guarded by mu
	sessions   map[uint64]*session      // guarded by mu
	perIP      map[string]int           // guarded by mu
	rollupSubs map[*serverConn]struct{} // guarded by mu
	draining   bool                     // guarded by mu
	closed     bool                     // guarded by mu

	flusherStarted bool // guarded by mu
	flusherStop    chan struct{}
	flusherDone    chan struct{}
	flusherOnce    sync.Once

	// Telemetry instruments, captured once at construction; nil (and
	// therefore no-op) when the server runs unobserved.
	sessionsGauge *telemetry.Gauge
	framesIn      *telemetry.Counter
	framesOut     *telemetry.Counter
	drops         *telemetry.Counter
	protoErrs     *telemetry.Counter
	flushes       *telemetry.Counter
	frameSeconds  *telemetry.Histogram
	flushFrames   *telemetry.Histogram
	flushSeconds  *telemetry.Histogram
}

// New validates the configuration and builds a stopped server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	trans, err := dvfs.Identity(dvfs.PentiumM(), cfg.Classifier.NumPhases())
	if err != nil {
		return nil, fmt.Errorf("phased: %d-phase classifier has no identity translation: %w",
			cfg.Classifier.NumPhases(), err)
	}
	s := &Server{
		cfg:        cfg,
		trans:      trans,
		clock:      cfg.Telemetry.Clock(),
		conns:      make(map[*serverConn]struct{}),
		sessions:   make(map[uint64]*session),
		perIP:      make(map[string]int),
		rollupSubs: make(map[*serverConn]struct{}),
		merger:     agg.NewMerger(0),

		flusherStop: make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	s.agg = agg.New(agg.Config{
		NodeID:      cfg.NodeID,
		Shards:      cfg.Workers,
		BucketLenNs: cfg.RollupBucket.Nanoseconds(),
		Clock:       s.clock,
		Telemetry:   cfg.Telemetry,
	})
	if tel := cfg.Telemetry; tel != nil {
		s.sessionsGauge = tel.PhasedSessions
		s.framesIn = tel.PhasedFramesIn
		s.framesOut = tel.PhasedFramesOut
		s.drops = tel.PhasedDroppedSamples
		s.protoErrs = tel.PhasedProtocolErrors
		s.flushes = tel.PhasedFlushes
		s.frameSeconds = tel.PhasedFrameSeconds
		s.flushFrames = tel.PhasedFlushFrames
		s.flushSeconds = tel.PhasedFlushSeconds
	}
	s.flushThreshold = cfg.FlushBytes / wire.PredictionRecordSize
	if s.flushThreshold < 1 {
		s.flushThreshold = 1
	}
	if s.flushThreshold > wire.MaxBatchPredictions {
		s.flushThreshold = wire.MaxBatchPredictions
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{srv: s, idx: i}
		w.cond = sync.NewCond(&w.mu)
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// Start listens on addr (e.g. "127.0.0.1:0"), serves in a background
// goroutine, and returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = s.Serve(ln) }()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a graceful shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("phased: server is shut down")
	}
	s.ln = ln
	s.startWorkersLocked()
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining || s.closed
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		// Nagle's algorithm would add its own delay on top of the
		// coalescer's explicit FlushInterval budget; disable it so the
		// only write latency is the one we account for.
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		sc := &serverConn{srv: s, c: c}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.readLoop(sc)
	}
}

// startWorkersLocked launches the worker pool and the rollup flusher
// once; callers hold s.mu.
func (s *Server) startWorkersLocked() {
	for _, w := range s.workers {
		if w.started {
			continue
		}
		w.started = true
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			w.run()
		}(w)
	}
	if !s.flusherStarted {
		s.flusherStarted = true
		go s.runFlusher()
	}
}

// runFlusher periodically emits closed rollup buckets until stopped.
func (s *Server) runFlusher() {
	defer close(s.flusherDone)
	tick := time.NewTicker(s.cfg.RollupFlush)
	defer tick.Stop()
	for {
		select {
		case <-s.flusherStop:
			return
		case <-tick.C:
			s.flushRollups(false)
		}
	}
}

// stopFlusher halts the periodic flusher and waits for it, so the
// final FlushAll never races the ticker on the copy-out buffer.
func (s *Server) stopFlusher() {
	s.mu.Lock()
	started := s.flusherStarted
	s.mu.Unlock()
	s.flusherOnce.Do(func() { close(s.flusherStop) })
	if started {
		<-s.flusherDone
	}
}

// flushRollups drains closed buckets (every bucket when final), folds
// them into the node's merged view, and pushes each as a Rollup frame
// to every subscribed connection. Buckets are copied out of the flush
// callback first: it runs under the shard lock, and a slow
// subscriber's write must never stall ingest.
func (s *Server) flushRollups(final bool) {
	s.scratch = s.scratch[:0]
	collect := func(r *wire.Rollup) { s.scratch = append(s.scratch, *r) }
	if final {
		s.agg.FlushAll(collect)
	} else {
		s.agg.FlushBefore(s.clock().UnixNano(), collect)
	}
	if len(s.scratch) == 0 {
		return
	}
	s.mu.Lock()
	subs := make([]*serverConn, 0, len(s.rollupSubs))
	for sc := range s.rollupSubs {
		subs = append(subs, sc)
	}
	s.mu.Unlock()
	for i := range s.scratch {
		r := &s.scratch[i]
		s.merger.Add(r)
		for _, sc := range subs {
			if err := sc.writeRollup(r); err != nil {
				s.dropConn(sc)
			}
		}
	}
}

// Shutdown gracefully drains the server: stop accepting, flush every
// session's queued samples, send each a Drain frame, then close all
// connections and stop the workers. It implements Drainable. A second
// call returns immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	if !alreadyDraining {
		for _, sess := range open {
			s.requestDrain(sess)
		}
	}

	// Wait for every session to flush and close, up to the deadline.
	err := s.awaitSessions(ctx)

	// Emit every remaining rollup bucket — partial windows included —
	// while subscriber connections are still open, so a draining node
	// never discards accumulated counts. The ticker is stopped first;
	// the final flush owns the copy-out buffer alone.
	s.stopFlusher()
	s.flushRollups(true)

	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	for _, w := range s.workers {
		w.stop()
	}
	s.wg.Wait()
	s.connWG.Wait()
	return err
}

// awaitSessions blocks until the session table empties or ctx expires.
func (s *Server) awaitSessions(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("phased: shutdown abandoned %d undrained sessions: %w", n, ctx.Err())
		case <-tick.C:
		}
	}
}

// requestDrain marks the session draining and schedules it so its
// worker flushes the queue and emits the Drain reply.
func (s *Server) requestDrain(sess *session) {
	w := s.workerFor(sess.id)
	w.mu.Lock()
	if sess.state == StateOpen || sess.state == StateNegotiating {
		sess.draining = true
		w.scheduleLocked(sess)
	}
	w.mu.Unlock()
}

// workerFor pins a session id to a worker by FNV-1a hash, the same
// static-sharding determinism the fleet engine uses: a session's
// samples are always processed in order by one goroutine.
func (s *Server) workerFor(id uint64) *worker {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (id >> (8 * i)) & 0xff
		h *= prime64
	}
	return s.workers[h%uint64(len(s.workers))]
}

// readLoop is the per-connection reader: it decodes frames and routes
// them — Hellos to session setup, Samples onto worker queues, Drains
// to the flush path. Fatal protocol errors answer with an Error frame
// and close the connection.
func (s *Server) readLoop(sc *serverConn) {
	defer s.connWG.Done()
	defer s.dropConn(sc)
	dec := wire.NewDecoder(deadlineReader{c: sc.c, d: s.cfg.ReadTimeout})
	for {
		kind, payload, err := dec.Next()
		if err != nil {
			if errors.Is(err, wire.ErrBadFrame) {
				s.protoErrs.Inc()
				_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
			}
			return
		}
		s.framesIn.Inc()
		switch kind {
		case wire.KindHello:
			if !s.handleHello(sc, payload) {
				return
			}
		case wire.KindSample:
			if !s.handleSample(sc, payload) {
				return
			}
		case wire.KindBatch:
			if !s.handleBatch(sc, payload) {
				return
			}
		case wire.KindDrain:
			if !s.handleClientDrain(sc, payload) {
				return
			}
		case wire.KindRestore:
			if !s.handleRestore(sc, payload) {
				return
			}
		case wire.KindAck, wire.KindPrediction, wire.KindRollup, wire.KindError, wire.KindSnapshot, wire.KindInvalid:
			// Server-to-client kinds arriving here mean a confused
			// peer; KindInvalid cannot leave the decoder.
			s.protoErrs.Inc()
			_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame,
				Msg: []byte("unexpected " + kind.String() + " frame")})
			return
		default:
			s.protoErrs.Inc()
			_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame,
				Msg: []byte("unknown frame kind")})
			return
		}
	}
}

// handleHello opens a session: builds the negotiated predictor,
// registers the session, and answers Ack. It reports whether the
// connection should stay open.
func (s *Server) handleHello(sc *serverConn, payload []byte) bool {
	var h wire.Hello
	if err := wire.DecodeHello(payload, &h); err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
		return false
	}
	if h.Flags&wire.FlagRollup != 0 {
		return s.handleRollupHello(sc, &h)
	}
	spec := string(h.Spec)
	spec = strings.TrimPrefix(spec, governor.MonitorPrefix)
	pred, err := core.NewPredictorFromSpec(spec, core.SpecEnv{Classifier: s.cfg.Classifier})
	if err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadSpec,
			SessionID: h.SessionID, Msg: []byte(err.Error())})
		return true // spec rejection is recoverable; the conn survives
	}
	var opts []core.Option
	if tel := s.cfg.Telemetry; tel != nil {
		opts = append(opts, core.WithTelemetry(tel))
	}
	mon, err := core.NewMonitor(s.cfg.Classifier, pred, opts...)
	if err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadSpec,
			SessionID: h.SessionID, Msg: []byte(err.Error())})
		return true
	}
	sess := &session{
		id:           h.SessionID,
		conn:         sc,
		mon:          mon,
		trans:        s.trans,
		numPhases:    s.cfg.Classifier.NumPhases(),
		queue:        newSampleRing(s.cfg.QueueDepth),
		state:        StateNegotiating,
		wantSnapshot: h.Flags&wire.FlagSnapshot != 0,
		spec:         append([]byte(nil), h.Spec...),
	}

	ackFlags := h.Flags & (wire.FlagSnapshot | wire.FlagBatch)
	if ackFlags&wire.FlagBatch != 0 {
		sc.enableBatch()
	}
	return s.registerAndAck(sc, sess, ackFlags)
}

// registerAndAck inserts a negotiated session into the server tables —
// enforcing the draining gate, duplicate-id, and per-IP limits — then
// answers the Ack, echoing the accepted feature flags, and opens it.
// Shared by the Hello and Restore paths; it reports whether the
// connection should stay open.
func (s *Server) registerAndAck(sc *serverConn, sess *session, ackFlags uint16) bool {
	s.mu.Lock()
	switch {
	case s.draining || s.closed:
		s.mu.Unlock()
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeOverloaded,
			SessionID: sess.id, Msg: []byte("server draining")})
		return false
	case s.sessions[sess.id] != nil:
		s.mu.Unlock()
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeDuplicateSession,
			SessionID: sess.id, Msg: []byte("session id in use")})
		return true
	case s.cfg.MaxSessionsPerIP > 0 && s.perIP[sc.ipKey()] >= s.cfg.MaxSessionsPerIP:
		s.mu.Unlock()
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeSessionLimit,
			SessionID: sess.id, Msg: []byte("per-IP session limit reached")})
		return true
	}
	s.sessions[sess.id] = sess
	s.perIP[sc.ipKey()]++
	s.sessionsGauge.Set(float64(len(s.sessions)))
	s.mu.Unlock()
	sc.addSession(sess)

	if err := sc.writeAck(&wire.Ack{SessionID: sess.id,
		NumPhases: uint8(s.cfg.Classifier.NumPhases()), Flags: ackFlags}); err != nil {
		return false
	}
	w := s.workerFor(sess.id)
	w.mu.Lock()
	if sess.state == StateNegotiating {
		sess.state = StateOpen
	}
	w.mu.Unlock()
	return true
}

// handleRestore resumes a session from a client-held snapshot: the
// predictor is rebuilt from the echoed spec exactly as handleHello
// would, the monitor's state is restored from the (inner-CRC-verified)
// blob, the stream position and accounting are seeded from the
// snapshot, and the session is registered and acked like any other.
// From the first post-Ack sample the prediction stream continues
// bit-identically with the drained session's — possibly on a different
// node, a different worker count, a different worker. A rejected state
// blob answers CodeBadSnapshot; the connection survives.
func (s *Server) handleRestore(sc *serverConn, payload []byte) bool {
	var r wire.Restore
	if err := wire.DecodeRestore(payload, &r); err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
		return false
	}
	spec := string(r.Spec)
	spec = strings.TrimPrefix(spec, governor.MonitorPrefix)
	pred, err := core.NewPredictorFromSpec(spec, core.SpecEnv{Classifier: s.cfg.Classifier})
	if err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadSpec,
			SessionID: r.SessionID, Msg: []byte(err.Error())})
		return true
	}
	var opts []core.Option
	if tel := s.cfg.Telemetry; tel != nil {
		opts = append(opts, core.WithTelemetry(tel))
	}
	mon, err := core.NewMonitor(s.cfg.Classifier, pred, opts...)
	if err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadSpec,
			SessionID: r.SessionID, Msg: []byte(err.Error())})
		return true
	}
	if err := mon.Restore(r.State); err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadSnapshot,
			SessionID: r.SessionID, Msg: []byte(err.Error())})
		return true
	}
	lastSeq := r.LastSeq
	if lastSeq == wire.NoSamples {
		lastSeq = 0
	}
	sess := &session{
		id:           r.SessionID,
		conn:         sc,
		mon:          mon,
		trans:        s.trans,
		numPhases:    s.cfg.Classifier.NumPhases(),
		queue:        newSampleRing(s.cfg.QueueDepth),
		state:        StateNegotiating,
		wantSnapshot: true, // a restored session is always re-migratable
		spec:         append([]byte(nil), r.Spec...),
		dropped:      r.Dropped,
		lastSeq:      lastSeq,
		processed:    r.Processed,
	}
	// A restored session always re-snapshots; batching carries over
	// only if the restoring client still asks for it (it may have
	// migrated to a build without the batch path).
	ackFlags := wire.FlagSnapshot | r.Flags&wire.FlagBatch
	if ackFlags&wire.FlagBatch != 0 {
		sc.enableBatch()
	}
	return s.registerAndAck(sc, sess, ackFlags)
}

// handleRollupHello subscribes the connection to the rollup stream: no
// session is opened (the Spec is ignored), the Hello is answered with
// an Ack, and from then on every flushed bucket is pushed to the
// connection as a Rollup frame until it closes.
func (s *Server) handleRollupHello(sc *serverConn, h *wire.Hello) bool {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeOverloaded,
			SessionID: h.SessionID, Msg: []byte("server draining")})
		return false
	}
	s.rollupSubs[sc] = struct{}{}
	s.mu.Unlock()
	return sc.writeAck(&wire.Ack{SessionID: h.SessionID,
		NumPhases: uint8(s.cfg.Classifier.NumPhases()),
		Flags:     wire.FlagRollup}) == nil
}

// handleSample queues one sample on its session's pinned worker.
func (s *Server) handleSample(sc *serverConn, payload []byte) bool {
	var smp wire.Sample
	if err := wire.DecodeSample(payload, &smp); err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
		return false
	}
	return s.queueSample(sc, &smp)
}

// handleBatch unpacks a client sample batch straight into the worker
// queues — each record takes the same path a per-frame Sample would,
// so batched and unbatched clients are indistinguishable past this
// point. A prediction batch arriving here is a confused peer
// (predictions only flow server→client) and is connection-fatal.
func (s *Server) handleBatch(sc *serverConn, payload []byte) bool {
	elem, n, recs, err := wire.DecodeBatch(payload)
	if err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
		return false
	}
	if elem != wire.KindSample {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame,
			Msg: []byte("unexpected " + elem.String() + " batch")})
		return false
	}
	for i := 0; i < n; i++ {
		var smp wire.Sample
		if err := wire.DecodeSample(recs[i*wire.SampleRecordSize:(i+1)*wire.SampleRecordSize], &smp); err != nil {
			s.protoErrs.Inc()
			_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
			return false
		}
		if !s.queueSample(sc, &smp) {
			return false
		}
	}
	return true
}

// queueSample routes one decoded sample to its session's pinned
// worker, accounting evictions; shared by the per-frame and batch
// read paths. It reports whether the connection should stay open.
func (s *Server) queueSample(sc *serverConn, smp *wire.Sample) bool {
	s.mu.Lock()
	sess := s.sessions[smp.SessionID]
	s.mu.Unlock()
	if sess == nil || sess.conn != sc {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeUnknownSession,
			SessionID: smp.SessionID, Msg: []byte("no such session on this connection")})
		return true
	}
	w := s.workerFor(sess.id)
	w.mu.Lock()
	if sess.state != StateOpen && sess.state != StateNegotiating {
		w.mu.Unlock()
		return true // draining/closed: late samples are dropped silently
	}
	if d := sess.queue.push(*smp); d > 0 {
		sess.dropped += uint64(d)
		s.drops.Add(uint64(d))
		// A shed sample was never served, so it has no class or setting;
		// the rollup counts it against the fleet's shed rate only.
		s.agg.IngestAt(w.idx, s.clock().UnixNano(), sess.id,
			phase.ClassUnknown, 0, agg.OutcomeShed, 0)
	}
	w.scheduleLocked(sess)
	w.mu.Unlock()
	return true
}

// handleClientDrain begins a client-initiated session drain.
func (s *Server) handleClientDrain(sc *serverConn, payload []byte) bool {
	var d wire.Drain
	if err := wire.DecodeDrain(payload, &d); err != nil {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeBadFrame, Msg: []byte(err.Error())})
		return false
	}
	s.mu.Lock()
	sess := s.sessions[d.SessionID]
	s.mu.Unlock()
	if sess == nil || sess.conn != sc {
		s.protoErrs.Inc()
		_ = sc.writeError(&wire.ErrorFrame{Code: wire.CodeUnknownSession,
			SessionID: d.SessionID, Msg: []byte("no such session on this connection")})
		return true
	}
	s.requestDrain(sess)
	return true
}

// unregisterSession removes a flushed session from the server tables.
func (s *Server) unregisterSession(sess *session) {
	s.mu.Lock()
	if s.sessions[sess.id] == sess {
		delete(s.sessions, sess.id)
		if n := s.perIP[sess.conn.ipKey()] - 1; n > 0 {
			s.perIP[sess.conn.ipKey()] = n
		} else {
			delete(s.perIP, sess.conn.ipKey())
		}
		s.sessionsGauge.Set(float64(len(s.sessions)))
	}
	s.mu.Unlock()
	sess.conn.removeSession(sess)
}

// dropConn tears a connection down along with every session it owns.
// Idempotent: the reader's deferred call and write-error paths race
// benignly.
func (s *Server) dropConn(sc *serverConn) {
	sc.close()
	s.mu.Lock()
	delete(s.conns, sc)
	delete(s.rollupSubs, sc)
	s.mu.Unlock()
	for _, sess := range sc.takeSessions() {
		w := s.workerFor(sess.id)
		w.mu.Lock()
		sess.state = StateClosed
		w.mu.Unlock()
		s.mu.Lock()
		if s.sessions[sess.id] == sess {
			delete(s.sessions, sess.id)
			if n := s.perIP[sc.ipKey()] - 1; n > 0 {
				s.perIP[sc.ipKey()] = n
			} else {
				delete(s.perIP, sc.ipKey())
			}
			s.sessionsGauge.Set(float64(len(s.sessions)))
		}
		s.mu.Unlock()
	}
}

// deadlineReader arms the connection's read deadline before every
// read, so the timeout bounds inter-frame gaps rather than whole-
// connection lifetime.
type deadlineReader struct {
	c net.Conn
	d time.Duration
}

func (r deadlineReader) Read(p []byte) (int, error) {
	if r.d > 0 {
		_ = r.c.SetReadDeadline(time.Now().Add(r.d))
	}
	return r.c.Read(p)
}

var _ io.Reader = deadlineReader{}

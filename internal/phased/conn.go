package phased

import (
	"net"
	"sync"
	"time"

	"phasemon/internal/wire"
)

// serverConn wraps one accepted connection. Frame writes from the
// reader goroutine (Acks, Errors) and the workers (Predictions,
// Drains) interleave on it, serialized by wmu; the write buffers are
// reused across frames so the steady-state write path allocates
// nothing.
//
// On a connection that negotiated FlagBatch, predictions are not
// written one frame at a time: they accumulate in preds and flush as
// one KindBatch frame when the batch reaches the server's size
// threshold, when the FlushInterval timer expires, or when a control
// frame (Ack, Drain, Snapshot, Error, Rollup) needs the wire — the
// control write first flushes the pending batch in the same writev,
// so frame order on the wire matches write order. TCP_NODELAY is set
// on every accepted connection: the coalescer replaces Nagle's
// algorithm with an explicit, bounded latency budget instead of
// stacking the kernel's delay on top of ours.
type serverConn struct {
	srv *Server
	c   net.Conn

	wmu sync.Mutex
	// wbuf holds the pending control frame.
	wbuf []byte // guarded by wmu

	// Write coalescer state, all under wmu. The buffers are allocated
	// once in enableBatch (cold) and reused by every flush; preds is
	// the pending reply batch, bbuf its frame encode buffer, vecs the
	// reusable writev vector, firstPendNs when preds[0] was buffered.
	batched     bool              // guarded by wmu
	preds       []wire.Prediction // guarded by wmu
	bbuf        []byte            // guarded by wmu
	vecs        net.Buffers       // guarded by wmu
	wvec        net.Buffers       // guarded by wmu
	flushTimer  *time.Timer       // guarded by wmu
	firstPendNs int64             // guarded by wmu

	smu      sync.Mutex
	sessions []*session // guarded by smu

	closeOnce sync.Once
}

// ipKey is the per-IP accounting key (host without port).
func (sc *serverConn) ipKey() string {
	host, _, err := net.SplitHostPort(sc.c.RemoteAddr().String())
	if err != nil {
		return sc.c.RemoteAddr().String()
	}
	return host
}

func (sc *serverConn) close() {
	sc.closeOnce.Do(func() {
		// Close the socket first: it unblocks any writer stuck in a
		// Write under wmu, so the lock below cannot deadlock behind a
		// stalled peer.
		_ = sc.c.Close()
		sc.wmu.Lock()
		if sc.flushTimer != nil {
			sc.flushTimer.Stop()
		}
		sc.wmu.Unlock()
	})
}

func (sc *serverConn) addSession(sess *session) {
	sc.smu.Lock()
	sc.sessions = append(sc.sessions, sess)
	sc.smu.Unlock()
}

func (sc *serverConn) removeSession(sess *session) {
	sc.smu.Lock()
	for i, s := range sc.sessions {
		if s == sess {
			sc.sessions = append(sc.sessions[:i], sc.sessions[i+1:]...)
			break
		}
	}
	sc.smu.Unlock()
}

// takeSessions empties and returns the connection's session list; used
// by teardown so each session is unregistered exactly once.
func (sc *serverConn) takeSessions() []*session {
	sc.smu.Lock()
	out := sc.sessions
	sc.sessions = nil
	sc.smu.Unlock()
	return out
}

// enableBatch switches the connection to coalesced reply writes; it
// runs once, from the Hello/Restore handshake, before any prediction
// can be pending. The flush timer is created stopped — the hot path
// only ever Resets it.
func (sc *serverConn) enableBatch() {
	sc.wmu.Lock()
	if !sc.batched {
		sc.batched = true
		sc.preds = make([]wire.Prediction, 0, sc.srv.flushThreshold)
		sc.bbuf = make([]byte, 0, sc.srv.flushThreshold*wire.PredictionRecordSize+wire.BatchOverhead)
		sc.vecs = make(net.Buffers, 0, 2)
		t := time.AfterFunc(time.Hour, sc.flushExpired)
		t.Stop()
		sc.flushTimer = t
	}
	sc.wmu.Unlock()
}

// flushExpired is the flush timer's callback: the latency bound on a
// partially filled batch has expired, so write it out now. A write
// failure tears the connection down exactly as it would on the worker
// path (dropConn must run outside wmu).
func (sc *serverConn) flushExpired() {
	sc.wmu.Lock()
	err := sc.flushLocked()
	sc.wmu.Unlock()
	if err != nil {
		sc.srv.dropConn(sc)
	}
}

// flushLocked writes everything pending — the coalesced prediction
// batch, the control frame in wbuf, or both in one writev — under the
// write deadline, then clears both buffers so a later timer-driven
// flush can never re-send stale bytes. Callers hold wmu.
//
//lint:hotpath
func (sc *serverConn) flushLocked() error {
	nb := len(sc.preds)
	if nb == 0 && len(sc.wbuf) == 0 {
		return nil
	}
	if nb > 0 {
		var err error
		sc.bbuf, err = wire.AppendBatchPredictions(sc.bbuf[:0], sc.preds)
		if err != nil {
			return err
		}
	}
	if d := sc.srv.cfg.WriteTimeout; d > 0 {
		_ = sc.c.SetWriteDeadline(time.Now().Add(d))
	}
	var err error
	frames := uint64(1)
	if nb > 0 {
		sc.vecs = append(sc.vecs[:0], sc.bbuf)
		if len(sc.wbuf) > 0 {
			sc.vecs = append(sc.vecs, sc.wbuf)
			frames = 2
		}
		// WriteTo consumes the net.Buffers it is called on, so it runs
		// on wvec, a scratch copy of the header: vecs keeps the reusable
		// backing array, and a field (unlike a local, which escapes via
		// the pointer receiver) costs no allocation.
		sc.wvec = sc.vecs
		_, err = sc.wvec.WriteTo(sc.c)
	} else {
		_, err = sc.c.Write(sc.wbuf)
	}
	if err != nil {
		return err
	}
	sc.srv.framesOut.Add(frames)
	sc.wbuf = sc.wbuf[:0]
	if nb > 0 {
		sc.preds = sc.preds[:0]
		sc.flushTimer.Stop()
		sc.srv.flushes.Inc()
		sc.srv.flushFrames.Observe(float64(nb))
		sc.srv.flushSeconds.Observe(float64(time.Now().UnixNano()-sc.firstPendNs) / 1e9)
	}
	return nil
}

func (sc *serverConn) writeAck(a *wire.Ack) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendAck(sc.wbuf[:0], a)
	return sc.flushLocked()
}

// writePrediction is the worker pool's reply path. Unbatched
// connections get the v1 behavior: one frame, one write. Batched
// connections buffer the prediction and flush on the size threshold;
// the latency bound is the flush timer armed when the batch opens.
//
//lint:hotpath
func (sc *serverConn) writePrediction(p *wire.Prediction) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if !sc.batched {
		sc.wbuf = wire.AppendPrediction(sc.wbuf[:0], p)
		return sc.flushLocked()
	}
	sc.preds = append(sc.preds, *p)
	if len(sc.preds) == 1 {
		sc.firstPendNs = time.Now().UnixNano()
		if iv := sc.srv.cfg.FlushInterval; iv > 0 {
			sc.flushTimer.Reset(iv)
		}
	}
	if len(sc.preds) >= sc.srv.flushThreshold || sc.srv.cfg.FlushInterval < 0 {
		return sc.flushLocked()
	}
	return nil
}

func (sc *serverConn) writeDrain(d *wire.Drain) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendDrain(sc.wbuf[:0], d)
	return sc.flushLocked()
}

func (sc *serverConn) writeSnapshot(s *wire.Snapshot) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = sc.wbuf[:0]
	buf, err := wire.AppendSnapshot(sc.wbuf, s)
	if err != nil {
		return err
	}
	sc.wbuf = buf
	return sc.flushLocked()
}

func (sc *serverConn) writeRollup(r *wire.Rollup) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendRollup(sc.wbuf[:0], r)
	return sc.flushLocked()
}

func (sc *serverConn) writeError(e *wire.ErrorFrame) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = sc.wbuf[:0]
	buf, err := wire.AppendError(sc.wbuf, e)
	if err != nil {
		return err
	}
	sc.wbuf = buf
	return sc.flushLocked()
}

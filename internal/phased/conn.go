package phased

import (
	"net"
	"sync"
	"time"

	"phasemon/internal/wire"
)

// serverConn wraps one accepted connection. Frame writes from the
// reader goroutine (Acks, Errors) and the workers (Predictions,
// Drains) interleave on it, serialized by wmu; the write buffer is
// reused across frames so the steady-state write path allocates
// nothing.
type serverConn struct {
	srv *Server
	c   net.Conn

	wmu  sync.Mutex
	wbuf []byte // guarded by wmu

	smu      sync.Mutex
	sessions []*session // guarded by smu

	closeOnce sync.Once
}

// ipKey is the per-IP accounting key (host without port).
func (sc *serverConn) ipKey() string {
	host, _, err := net.SplitHostPort(sc.c.RemoteAddr().String())
	if err != nil {
		return sc.c.RemoteAddr().String()
	}
	return host
}

func (sc *serverConn) close() {
	sc.closeOnce.Do(func() { _ = sc.c.Close() })
}

func (sc *serverConn) addSession(sess *session) {
	sc.smu.Lock()
	sc.sessions = append(sc.sessions, sess)
	sc.smu.Unlock()
}

func (sc *serverConn) removeSession(sess *session) {
	sc.smu.Lock()
	for i, s := range sc.sessions {
		if s == sess {
			sc.sessions = append(sc.sessions[:i], sc.sessions[i+1:]...)
			break
		}
	}
	sc.smu.Unlock()
}

// takeSessions empties and returns the connection's session list; used
// by teardown so each session is unregistered exactly once.
func (sc *serverConn) takeSessions() []*session {
	sc.smu.Lock()
	out := sc.sessions
	sc.sessions = nil
	sc.smu.Unlock()
	return out
}

// flushLocked writes the encoded frame sitting in wbuf under the write
// deadline; callers hold wmu.
func (sc *serverConn) flushLocked() error {
	if d := sc.srv.cfg.WriteTimeout; d > 0 {
		_ = sc.c.SetWriteDeadline(time.Now().Add(d))
	}
	_, err := sc.c.Write(sc.wbuf)
	if err == nil {
		sc.srv.framesOut.Inc()
	}
	return err
}

func (sc *serverConn) writeAck(a *wire.Ack) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendAck(sc.wbuf[:0], a)
	return sc.flushLocked()
}

func (sc *serverConn) writePrediction(p *wire.Prediction) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendPrediction(sc.wbuf[:0], p)
	return sc.flushLocked()
}

func (sc *serverConn) writeDrain(d *wire.Drain) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendDrain(sc.wbuf[:0], d)
	return sc.flushLocked()
}

func (sc *serverConn) writeSnapshot(s *wire.Snapshot) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	buf, err := wire.AppendSnapshot(sc.wbuf[:0], s)
	if err != nil {
		return err
	}
	sc.wbuf = buf
	return sc.flushLocked()
}

func (sc *serverConn) writeRollup(r *wire.Rollup) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendRollup(sc.wbuf[:0], r)
	return sc.flushLocked()
}

func (sc *serverConn) writeError(e *wire.ErrorFrame) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = wire.AppendError(sc.wbuf[:0], e)
	return sc.flushLocked()
}

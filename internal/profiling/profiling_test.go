package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("disabled stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so both profiles have something to
	// record; the files must be non-empty either way because pprof
	// writes headers unconditionally.
	sink := make([]byte, 1<<16)
	for i := range sink {
		sink[i] = byte(i)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	_ = sink
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Idempotent: a second stop is a no-op, not a double-close.
	if err := stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	stop, err := Start(filepath.Join(t.TempDir(), "missing", "cpu.pprof"), "")
	if err == nil {
		t.Fatal("want error for uncreatable CPU profile path")
	}
	if stop == nil {
		t.Fatal("stop must be non-nil even on error")
	}
	if err := stop(); err != nil {
		t.Errorf("error-path stop: %v", err)
	}
}

func TestStopReportsBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "missing", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("want error for uncreatable heap profile path")
	}
}

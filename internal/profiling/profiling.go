// Package profiling attaches the standard runtime/pprof CPU and heap
// profiles to a command-line run. The CLIs expose it as -cpuprofile
// and -memprofile; the returned stop function must run on every exit
// path — including error paths that end in os.Exit, which skips
// deferred calls — because pprof.StopCPUProfile flushes buffered
// samples and the heap profile is only captured at stop time.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges
// for a heap profile to be written to memPath (when non-empty) by the
// returned stop function. Stop is always non-nil and idempotent: the
// first call flushes and closes the CPU profile and captures the heap
// profile, later calls are no-ops. Empty paths disable the respective
// profile, so callers can wire flag values through unconditionally.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return noop, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return noop, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("profiling: close CPU profile: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

func noop() error { return nil }

// writeHeapProfile forces a GC first so the profile reflects live
// objects rather than garbage awaiting collection — the same choice
// net/http/pprof makes for /debug/pprof/heap.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: write heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiling: close heap profile: %w", err)
	}
	return nil
}

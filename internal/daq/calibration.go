package daq

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Calibration models the systematic errors of the measurement chain —
// the reason the paper's absolute watts carry an instrument tolerance
// even when the methodology is sound. Gain error scales the
// conditioned voltage drops (and hence the computed currents);
// offset adds a constant bias to each drop.
type Calibration struct {
	// GainError is the fractional gain error of the conditioning
	// unit's differential channels (e.g. 0.005 = +0.5%).
	GainError float64
	// OffsetV is an additive bias on each conditioned voltage drop.
	OffsetV float64
}

// Apply transforms an ideal sample through the calibration errors,
// returning what the logging machine would actually record.
func (c Calibration) Apply(s Sample) Sample {
	// Reconstruct the drops the conditioning unit saw, perturb them,
	// and recompute the currents with the nominal resistance.
	const r = 0.002
	d1 := s.I1*r*(1+c.GainError) + c.OffsetV
	d2 := s.I2*r*(1+c.GainError) + c.OffsetV
	s.I1 = d1 / r
	s.I2 = d2 / r
	return s
}

// ApplyAll maps Apply over a sample stream.
func (c Calibration) ApplyAll(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = c.Apply(s)
	}
	return out
}

// WriteCSV exports a sample stream (one row per DAQ record) for
// external analysis, with reconstructed power as a derived column.
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "vcpu_v", "i1_a", "i2_a", "port", "power_w"}); err != nil {
		return fmt.Errorf("daq: writing header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, s := range samples {
		row := []string{
			f(s.T), f(s.VCPU), f(s.I1), f(s.I2),
			strconv.Itoa(int(s.Port)), f(s.PowerW()),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("daq: writing sample %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("daq: flushing: %w", err)
	}
	return nil
}

// Package daq models the paper's real-power measurement path
// (Figure 9, region 3): two 2 mΩ sense resistors between the voltage
// regulator and the CPU, a signal conditioning unit computing the
// voltage drops, a National Instruments DAQ sampling eight signals
// every 40 µs, and a logging machine that computes per-phase power
// from the sampled currents and the parallel-port marker bits.
//
// Measurement here is deliberately independent of the analytic power
// model: the machine emits a voltage/power waveform, the DAQ samples
// it through the resistor network with measurement noise, and the
// logging machine reconstructs power as VCPU·(I1+I2) — so agreement
// between DAQ-reported and model energy is a meaningful end-to-end
// check, exactly as the paper's separate measurement hardware was.
package daq

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"phasemon/internal/machine"
)

// Waveform records the machine's power output; it implements
// machine.Recorder.
type Waveform struct {
	spans []machine.Span
}

// NewWaveform returns an empty waveform.
func NewWaveform() *Waveform { return &Waveform{} }

// Record implements machine.Recorder.
func (w *Waveform) Record(s machine.Span) {
	if s.Dur <= 0 {
		return
	}
	w.spans = append(w.spans, s)
}

// Spans returns the recorded spans in arrival order. Callers must not
// modify the slice.
func (w *Waveform) Spans() []machine.Span { return w.spans }

// Duration returns the waveform's total covered time.
func (w *Waveform) Duration() float64 {
	var d float64
	for _, s := range w.spans {
		d += s.Dur
	}
	return d
}

// Len returns the number of spans.
func (w *Waveform) Len() int { return len(w.spans) }

// Config parameterizes the acquisition hardware.
type Config struct {
	// SamplePeriodS is the DAQ sampling period; the paper's DAQPad
	// 6070E samples its eight signals every 40 µs.
	SamplePeriodS float64
	// SenseOhm is each sense resistor's value (2 mΩ on the paper's
	// board).
	SenseOhm float64
	// NoiseV is the RMS Gaussian noise on each measured voltage after
	// signal conditioning.
	NoiseV float64
	// Seed drives the noise generator.
	Seed int64
}

// DefaultConfig returns the paper's measurement parameters with a
// small realistic noise floor.
func DefaultConfig() Config {
	return Config{
		SamplePeriodS: 40e-6,
		SenseOhm:      0.002,
		NoiseV:        20e-6,
		Seed:          1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.SamplePeriodS > 0) {
		return fmt.Errorf("daq: sample period %v must be positive", c.SamplePeriodS)
	}
	if !(c.SenseOhm > 0) {
		return fmt.Errorf("daq: sense resistance %v must be positive", c.SenseOhm)
	}
	if c.NoiseV < 0 {
		return fmt.Errorf("daq: noise %v must be non-negative", c.NoiseV)
	}
	return nil
}

// Sample is one DAQ record after signal conditioning: the CPU voltage,
// the two branch currents computed from the resistor drops, the
// parallel-port state, and the sample time.
type Sample struct {
	T    float64
	VCPU float64
	I1   float64
	I2   float64
	Port uint8
}

// PowerW reconstructs instantaneous CPU power the way the paper's
// logging machine does: P = VCPU · (I1 + I2).
func (s Sample) PowerW() float64 { return s.VCPU * (s.I1 + s.I2) }

// ErrEmptyWaveform reports acquisition over an empty waveform.
var ErrEmptyWaveform = errors.New("daq: empty waveform")

// Acquire samples the waveform through the measurement chain. For each
// sample instant it locates the active span, derives the physical
// signals (total current I = P/V split across the two sense
// resistors, upstream voltages V1 = V2 = VCPU + I/2·R), adds
// measurement noise to the three measured voltages, and applies the
// conditioning unit's arithmetic to recover the currents.
func Acquire(w *Waveform, cfg Config) ([]Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spans := w.Spans()
	if len(spans) == 0 {
		return nil, ErrEmptyWaveform
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := spans[0].T0
	end := spans[len(spans)-1].T0 + spans[len(spans)-1].Dur

	var out []Sample
	si := 0
	for t := start; t < end; t += cfg.SamplePeriodS {
		// Advance to the span containing t. Spans are contiguous and
		// sorted; the sampling clock only moves forward.
		for si < len(spans)-1 && t >= spans[si].T0+spans[si].Dur {
			si++
		}
		sp := spans[si]
		if t < sp.T0 {
			continue // gap (should not occur with a contiguous waveform)
		}
		itotal := 0.0
		if sp.Volts > 0 {
			itotal = sp.Watts / sp.Volts
		}
		ibranch := itotal / 2
		vup := sp.Volts + ibranch*cfg.SenseOhm

		// The three measured voltages, each with conditioning noise.
		v1 := vup + rng.NormFloat64()*cfg.NoiseV
		v2 := vup + rng.NormFloat64()*cfg.NoiseV
		vcpu := sp.Volts + rng.NormFloat64()*cfg.NoiseV

		out = append(out, Sample{
			T:    t,
			VCPU: vcpu,
			I1:   (v1 - vcpu) / cfg.SenseOhm,
			I2:   (v2 - vcpu) / cfg.SenseOhm,
			Port: sp.Port,
		})
	}
	return out, nil
}

// PhaseStat is the logging machine's per-phase aggregation, delimited
// by flips of the phase marker bit.
type PhaseStat struct {
	// Index is the phase sample's ordinal.
	Index int
	// T0 is the first sample time in the phase; DurS its extent.
	T0   float64
	DurS float64
	// EnergyJ and AvgPowerW are integrated from the samples.
	EnergyJ   float64
	AvgPowerW float64
	// Samples is how many DAQ records landed in the phase.
	Samples int
}

// Report is the logging machine's output for a run.
type Report struct {
	// TotalEnergyJ and TotalDurS integrate every sample.
	TotalEnergyJ float64
	TotalDurS    float64
	// AvgPowerW is total energy over total duration.
	AvgPowerW float64
	// AppEnergyJ and AppDurS cover samples with the application marker
	// set (DAQ bit 2).
	AppEnergyJ float64
	AppDurS    float64
	// HandlerDurS covers samples taken inside the PMI handler (bit 1).
	HandlerDurS float64
	// Phases are the per-interval statistics (bit 0 flips), computed
	// over application samples outside the handler.
	Phases []PhaseStat
}

// Analyze reduces a sample stream to the Report, reproducing the
// paper's per-phase power attribution.
func Analyze(samples []Sample, cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if len(samples) == 0 {
		return Report{}, fmt.Errorf("daq: no samples to analyze")
	}
	if !sort.SliceIsSorted(samples, func(i, j int) bool { return samples[i].T < samples[j].T }) {
		return Report{}, fmt.Errorf("daq: samples out of order")
	}

	var rep Report
	dt := cfg.SamplePeriodS
	var cur *PhaseStat
	lastPhaseBit := uint8(0xFF) // sentinel: first app sample opens a phase

	for _, s := range samples {
		p := s.PowerW()
		rep.TotalEnergyJ += p * dt
		rep.TotalDurS += dt
		if s.Port&machine.PortBitHandler != 0 {
			rep.HandlerDurS += dt
		}
		if s.Port&machine.PortBitApp == 0 {
			continue
		}
		rep.AppEnergyJ += p * dt
		rep.AppDurS += dt
		if s.Port&machine.PortBitHandler != 0 {
			continue // handler time is not attributed to a phase
		}
		bit := s.Port & machine.PortBitPhase
		if bit != lastPhaseBit {
			rep.Phases = append(rep.Phases, PhaseStat{Index: len(rep.Phases), T0: s.T})
			cur = &rep.Phases[len(rep.Phases)-1]
			lastPhaseBit = bit
		}
		cur.Samples++
		cur.DurS += dt
		cur.EnergyJ += p * dt
	}
	for i := range rep.Phases {
		if rep.Phases[i].DurS > 0 {
			rep.Phases[i].AvgPowerW = rep.Phases[i].EnergyJ / rep.Phases[i].DurS
		}
	}
	if rep.TotalDurS > 0 {
		rep.AvgPowerW = rep.TotalEnergyJ / rep.TotalDurS
	}
	return rep, nil
}

package daq

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"phasemon/internal/machine"
)

func idealSamples(t *testing.T, watts, volts, durS float64) []Sample {
	t.Helper()
	w := NewWaveform()
	w.Record(machine.Span{T0: 0, Dur: durS, Watts: watts, Volts: volts, Port: machine.PortBitApp})
	cfg := DefaultConfig()
	cfg.NoiseV = 0
	samples, err := Acquire(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestCalibrationIdentity(t *testing.T) {
	samples := idealSamples(t, 10, 1.4, 0.01)
	out := Calibration{}.ApplyAll(samples)
	for i := range samples {
		if math.Abs(out[i].PowerW()-samples[i].PowerW()) > 1e-9 {
			t.Fatalf("identity calibration changed sample %d", i)
		}
	}
}

func TestGainErrorScalesPower(t *testing.T) {
	samples := idealSamples(t, 10, 1.4, 0.01)
	const gain = 0.01
	out := Calibration{GainError: gain}.ApplyAll(samples)
	for i := range out {
		want := samples[i].PowerW() * (1 + gain)
		if math.Abs(out[i].PowerW()-want)/want > 1e-9 {
			t.Fatalf("sample %d: power %v, want %v", i, out[i].PowerW(), want)
		}
	}
}

func TestOffsetBiasesPower(t *testing.T) {
	samples := idealSamples(t, 10, 1.4, 0.01)
	const offset = 100e-6 // 0.1 mV on a ~7 mV drop
	out := Calibration{OffsetV: offset}.ApplyAll(samples)
	// Bias per branch: offset/R amps; power bias = V * 2*offset/R.
	wantBias := 1.4 * 2 * offset / 0.002
	for i := range out {
		got := out[i].PowerW() - samples[i].PowerW()
		if math.Abs(got-wantBias)/wantBias > 1e-9 {
			t.Fatalf("sample %d: bias %v, want %v", i, got, wantBias)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	samples := idealSamples(t, 8, 1.2, 0.001)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(samples)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(samples)+1)
	}
	if !strings.HasPrefix(lines[0], "t_s,vcpu_v,i1_a,i2_a,port,power_w") {
		t.Errorf("header = %q", lines[0])
	}
	// Power column reconstructs ~8 W.
	fields := strings.Split(lines[1], ",")
	if len(fields) != 6 {
		t.Fatalf("row has %d fields", len(fields))
	}
	if !strings.HasPrefix(fields[5], "8") && !strings.HasPrefix(fields[5], "7.9") {
		t.Errorf("power field = %q, want ~8", fields[5])
	}
}

package daq

import (
	"math"
	"testing"

	"phasemon/internal/core"
	"phasemon/internal/dvfs"
	"phasemon/internal/kernelsim"
	"phasemon/internal/machine"
	"phasemon/internal/phase"
	"phasemon/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{SamplePeriodS: 0, SenseOhm: 0.002},
		{SamplePeriodS: 40e-6, SenseOhm: 0},
		{SamplePeriodS: 40e-6, SenseOhm: 0.002, NoiseV: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWaveformRecording(t *testing.T) {
	w := NewWaveform()
	w.Record(machine.Span{T0: 0, Dur: 1, Watts: 10, Volts: 1.4})
	w.Record(machine.Span{T0: 1, Dur: 0, Watts: 5, Volts: 1.4}) // zero-length dropped
	w.Record(machine.Span{T0: 1, Dur: 0.5, Watts: 5, Volts: 1.4})
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Duration(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Duration = %v", got)
	}
}

func TestAcquireReconstructsPower(t *testing.T) {
	// A constant 10 W at 1.4 V for 10 ms, noiselessly sampled, must
	// reconstruct to 10 W at every sample.
	w := NewWaveform()
	w.Record(machine.Span{T0: 0, Dur: 0.01, Watts: 10, Volts: 1.4})
	cfg := DefaultConfig()
	cfg.NoiseV = 0
	samples, err := Acquire(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 250 { // 10ms / 40µs
		t.Fatalf("got %d samples, want 250", len(samples))
	}
	for i, s := range samples {
		if math.Abs(s.PowerW()-10) > 1e-9 {
			t.Fatalf("sample %d power = %v", i, s.PowerW())
		}
		if math.Abs(s.VCPU-1.4) > 1e-12 {
			t.Fatalf("sample %d VCPU = %v", i, s.VCPU)
		}
		// Branch currents are equal halves of P/V.
		want := 10 / 1.4 / 2
		if math.Abs(s.I1-want) > 1e-9 || math.Abs(s.I2-want) > 1e-9 {
			t.Fatalf("sample %d currents %v, %v, want %v", i, s.I1, s.I2, want)
		}
	}
}

func TestAcquireErrors(t *testing.T) {
	if _, err := Acquire(NewWaveform(), DefaultConfig()); err == nil {
		t.Error("empty waveform accepted")
	}
	w := NewWaveform()
	w.Record(machine.Span{T0: 0, Dur: 1e-9, Watts: 1, Volts: 1})
	// A waveform shorter than one sample period still yields the t=0
	// sample.
	samples, err := Acquire(w, DefaultConfig())
	if err != nil || len(samples) != 1 {
		t.Errorf("sub-sample waveform: %d samples, err %v", len(samples), err)
	}
	if _, err := Acquire(w, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestNoiseIsSmallAndZeroMean(t *testing.T) {
	w := NewWaveform()
	w.Record(machine.Span{T0: 0, Dur: 0.1, Watts: 8, Volts: 1.2})
	samples, err := Acquire(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range samples {
		sum += s.PowerW()
	}
	mean := sum / float64(len(samples))
	if math.Abs(mean-8)/8 > 0.01 {
		t.Errorf("mean reconstructed power %v deviates more than 1%% from 8 W", mean)
	}
}

func TestAnalyzeEmptyAndUnsorted(t *testing.T) {
	if _, err := Analyze(nil, DefaultConfig()); err == nil {
		t.Error("empty samples accepted")
	}
	ss := []Sample{{T: 1}, {T: 0}}
	if _, err := Analyze(ss, DefaultConfig()); err == nil {
		t.Error("unsorted samples accepted")
	}
	if _, err := Analyze(ss, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

// runInstrumented executes a managed applu run with the full
// measurement chain attached and returns the machine, module, and
// acquired samples.
func runInstrumented(t *testing.T, intervals int) (*machine.Machine, *kernelsim.Module, []Sample) {
	t.Helper()
	wave := NewWaveform()
	m := machine.New(machine.Config{Recorder: wave})
	gpht := core.MustNewGPHT(core.DefaultGPHTConfig())
	mon, err := core.NewMonitor(phase.Default(), gpht)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dvfs.Identity(dvfs.PentiumM(), 6)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := kernelsim.NewModule(kernelsim.Config{Monitor: mon, Translation: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Load(m); err != nil {
		t.Fatal(err)
	}
	p, err := workload.ByName("applu_in")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(p.Generator(workload.Params{Seed: 1, Intervals: intervals}), mod); err != nil {
		t.Fatal(err)
	}
	samples, err := Acquire(wave, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, mod, samples
}

func TestEndToEndDAQEnergyMatchesMachine(t *testing.T) {
	// The independent measurement path must agree with the machine's
	// analytic energy to within sampling + noise error.
	m, _, samples := runInstrumented(t, 40)
	rep, err := Analyze(samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rep.TotalEnergyJ-m.EnergyJ()) / m.EnergyJ(); rel > 0.02 {
		t.Errorf("DAQ energy %v vs machine %v: relative error %v", rep.TotalEnergyJ, m.EnergyJ(), rel)
	}
	if rel := math.Abs(rep.TotalDurS-m.Now()) / m.Now(); rel > 0.02 {
		t.Errorf("DAQ duration %v vs machine %v: relative error %v", rep.TotalDurS, m.Now(), rel)
	}
	if rep.AvgPowerW <= 0 {
		t.Error("non-positive average power")
	}
}

func TestEndToEndPerPhaseAttribution(t *testing.T) {
	_, mod, samples := runInstrumented(t, 40)
	rep, err := Analyze(samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	klog := mod.ReadLog()
	// The logging machine should find one phase per kernel-log sample
	// (the trailing interval may be clipped by sampling quantization).
	if d := len(klog) - len(rep.Phases); d < 0 || d > 1 {
		t.Fatalf("DAQ found %d phases, kernel logged %d", len(rep.Phases), len(klog))
	}
	// Phase durations at 100M uops are on the order of 100 ms; each
	// must hold thousands of 40 µs samples.
	for i, ph := range rep.Phases {
		if ph.Samples < 500 {
			t.Fatalf("phase %d has only %d samples", i, ph.Samples)
		}
		if ph.AvgPowerW <= 0 || ph.AvgPowerW > 25 {
			t.Fatalf("phase %d: implausible power %v W", i, ph.AvgPowerW)
		}
	}
	// Handler time is recorded but tiny.
	if rep.HandlerDurS <= 0 {
		t.Error("no handler time observed")
	}
	if rep.HandlerDurS > 0.001*rep.TotalDurS {
		t.Errorf("handler time %v not invisible next to %v", rep.HandlerDurS, rep.TotalDurS)
	}
	// App time dominates.
	if rep.AppDurS < 0.99*rep.TotalDurS {
		t.Errorf("app time %v suspiciously small vs %v", rep.AppDurS, rep.TotalDurS)
	}
}

func TestPerPhasePowerTracksDVFSSetting(t *testing.T) {
	// Phases the governor ran at 600 MHz must measure much less power
	// than phases run at 1.5 GHz — the visible effect in Figure 10's
	// middle chart.
	_, mod, samples := runInstrumented(t, 60)
	rep, err := Analyze(samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	klog := mod.ReadLog()
	n := len(rep.Phases)
	if n > len(klog) {
		n = len(klog)
	}
	var fastSum, fastN, slowSum, slowN float64
	for i := 0; i < n; i++ {
		switch klog[i].Setting {
		case 0:
			fastSum += rep.Phases[i].AvgPowerW
			fastN++
		case 5:
			slowSum += rep.Phases[i].AvgPowerW
			slowN++
		}
	}
	if fastN == 0 || slowN == 0 {
		t.Skip("run did not exercise both extreme settings")
	}
	fast := fastSum / fastN
	slow := slowSum / slowN
	if !(fast > 2.5*slow) {
		t.Errorf("fast-phase power %v not well above slow-phase %v", fast, slow)
	}
}

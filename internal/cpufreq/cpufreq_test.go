package cpufreq

import (
	"os"
	"path/filepath"
	"testing"

	"phasemon/internal/dvfs"
	"phasemon/internal/governor"
	"phasemon/internal/machine"
	"phasemon/internal/workload"
)

// fakeSysfs fabricates a cpufreq policy tree and returns its root.
func fakeSysfs(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "cpu0", "cpufreq")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func pentiumMFiles() map[string]string {
	return map[string]string{
		"scaling_available_frequencies": "600000 800000 1000000 1200000 1400000 1500000\n",
		"scaling_cur_freq":              "1500000\n",
		"scaling_governor":              "userspace\n",
		"scaling_setspeed":              "<unsupported>\n",
		"cpuinfo_min_freq":              "600000\n",
		"cpuinfo_max_freq":              "1500000\n",
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Root: t.TempDir()}); err == nil {
		t.Error("missing cpufreq dir accepted")
	}
	if _, err := Open(Config{Root: t.TempDir(), CPU: -1}); err == nil {
		t.Error("negative cpu accepted")
	}
	root := fakeSysfs(t, pentiumMFiles())
	if _, err := Open(Config{Root: root}); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestAvailableKHzSortedDescending(t *testing.T) {
	root := fakeSysfs(t, pentiumMFiles())
	i, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	freqs, err := i.AvailableKHz()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1500000, 1400000, 1200000, 1000000, 800000, 600000}
	if len(freqs) != len(want) {
		t.Fatalf("got %v", freqs)
	}
	for j := range want {
		if freqs[j] != want[j] {
			t.Fatalf("freqs = %v, want %v", freqs, want)
		}
	}
}

func TestAvailableKHzFallsBackToMinMax(t *testing.T) {
	files := pentiumMFiles()
	delete(files, "scaling_available_frequencies")
	root := fakeSysfs(t, files)
	i, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	freqs, err := i.AvailableKHz()
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 2 || freqs[0] != 1500000 || freqs[1] != 600000 {
		t.Fatalf("fallback freqs = %v", freqs)
	}
}

func TestAvailableKHzMalformed(t *testing.T) {
	files := pentiumMFiles()
	files["scaling_available_frequencies"] = "fast slow\n"
	root := fakeSysfs(t, files)
	i, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := i.AvailableKHz(); err == nil {
		t.Error("malformed list accepted")
	}
}

func TestCurrentAndGovernor(t *testing.T) {
	root := fakeSysfs(t, pentiumMFiles())
	i, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := i.CurrentKHz()
	if err != nil || cur != 1500000 {
		t.Errorf("CurrentKHz = %v, %v", cur, err)
	}
	gov, err := i.Governor()
	if err != nil || gov != "userspace" {
		t.Errorf("Governor = %q, %v", gov, err)
	}
	if err := i.SetGovernor("performance"); err != nil {
		t.Fatal(err)
	}
	gov, err = i.Governor()
	if err != nil || gov != "performance" {
		t.Errorf("after SetGovernor: %q, %v", gov, err)
	}
	if err := i.SetGovernor(""); err == nil {
		t.Error("empty governor accepted")
	}
}

func TestSetKHzWrites(t *testing.T) {
	root := fakeSysfs(t, pentiumMFiles())
	i, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if err := i.SetKHz(800000); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(root, "cpu0", "cpufreq", "scaling_setspeed"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "800000" {
		t.Errorf("scaling_setspeed = %q", b)
	}
	if err := i.SetKHz(0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestActuator(t *testing.T) {
	root := fakeSysfs(t, pentiumMFiles())
	i, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewActuator(i)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 6 || a.Current() != -1 {
		t.Fatalf("fresh actuator: len=%d cur=%d", a.Len(), a.Current())
	}
	if f, _ := a.FrequencyKHz(0); f != 1500000 {
		t.Errorf("setting 0 = %d kHz", f)
	}
	if _, err := a.FrequencyKHz(9); err == nil {
		t.Error("out-of-range setting accepted")
	}
	if err := a.Set(5); err != nil {
		t.Fatal(err)
	}
	if a.Current() != 5 {
		t.Errorf("Current = %d", a.Current())
	}
	// Redundant Set must not rewrite: plant a sentinel and set the
	// same setting again — the sentinel survives.
	setspeed := filepath.Join(root, "cpu0", "cpufreq", "scaling_setspeed")
	if err := os.WriteFile(setspeed, []byte("sentinel"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Set(5); err != nil {
		t.Errorf("redundant Set failed: %v", err)
	}
	if b, _ := os.ReadFile(setspeed); string(b) != "sentinel" {
		t.Errorf("redundant Set rewrote the file: %q", b)
	}
	// A real change writes through.
	if err := a.Set(0); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(setspeed); string(b) != "1500000" {
		t.Errorf("Set(0) wrote %q", b)
	}
}

func TestOpenRealSysfs(t *testing.T) {
	// On machines with a real cpufreq driver this exercises the true
	// read path; elsewhere it documents the graceful degradation.
	i, err := Open(DefaultConfig())
	if err != nil {
		t.Skipf("no cpufreq on this machine: %v", err)
	}
	if _, err := i.AvailableKHz(); err != nil {
		t.Logf("real ladder unavailable: %v", err)
	}
}

func TestRealLadderDrivesSimulatedGovernor(t *testing.T) {
	// End to end across the hardware bridge: read a (fake) machine's
	// cpufreq frequency list, build a power-modeled ladder from it, and
	// run the full simulated governor stack on that ladder — what a
	// deployment on unknown hardware would do.
	root := fakeSysfs(t, pentiumMFiles())
	iface, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	khz, err := iface.AvailableKHz()
	if err != nil {
		t.Fatal(err)
	}
	hz := make([]float64, len(khz))
	for i, f := range khz {
		hz[i] = float64(f) * 1e3
	}
	ladder, err := dvfs.LadderFromFrequencies("fake-machine", hz, 0.956, 1.484)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dvfs.Identity(ladder, 6)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ByName("applu_in")
	if err != nil {
		t.Fatal(err)
	}
	gen := prof.Generator(workload.Params{Seed: 1, Intervals: 300})
	cfg := governor.Config{Translation: tr, Machine: machine.Config{Ladder: ladder}}
	base, err := governor.Run(gen, governor.Unmanaged(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	managed, err := governor.Run(gen, governor.Proactive(8, 128), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if imp := governor.EDPImprovement(base, managed); imp < 0.15 {
		t.Errorf("EDP improvement %v on the hardware-derived ladder, want > 15%%", imp)
	}
}

// Package cpufreq actuates real DVFS through the Linux cpufreq sysfs
// interface — the modern descendant of the SpeedStep MSR writes the
// paper's kernel module performs. Together with package perfevent it
// completes a real-hardware deployment path: live counters in, live
// frequency settings out.
//
// All paths are rooted at a configurable directory, so the full parse
// and actuation logic is unit-testable against a fabricated sysfs
// tree; on a real machine writes additionally require the `userspace`
// scaling governor and root privileges, and every failure mode is
// reported as a normal error.
package cpufreq

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Config locates the cpufreq tree.
type Config struct {
	// Root is the sysfs cpu directory; empty selects
	// /sys/devices/system/cpu.
	Root string
	// CPU is the logical CPU whose policy is driven.
	CPU int
}

// DefaultConfig targets cpu0 on the real sysfs.
func DefaultConfig() Config {
	return Config{Root: "/sys/devices/system/cpu", CPU: 0}
}

// Interface drives one CPU's frequency policy.
type Interface struct {
	dir string
}

// ErrUnavailable reports that the cpufreq tree is missing — no driver,
// or not Linux.
var ErrUnavailable = errors.New("cpufreq: scaling interface unavailable")

// Open validates the policy directory.
func Open(cfg Config) (*Interface, error) {
	if cfg.Root == "" {
		cfg.Root = DefaultConfig().Root
	}
	if cfg.CPU < 0 {
		return nil, fmt.Errorf("cpufreq: negative cpu %d", cfg.CPU)
	}
	dir := filepath.Join(cfg.Root, fmt.Sprintf("cpu%d", cfg.CPU), "cpufreq")
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, dir)
	}
	return &Interface{dir: dir}, nil
}

func (i *Interface) read(name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(i.dir, name))
	if err != nil {
		return "", fmt.Errorf("cpufreq: reading %s: %w", name, err)
	}
	return strings.TrimSpace(string(b)), nil
}

func (i *Interface) write(name, value string) error {
	if err := os.WriteFile(filepath.Join(i.dir, name), []byte(value), 0o644); err != nil {
		return fmt.Errorf("cpufreq: writing %s: %w", name, err)
	}
	return nil
}

// AvailableKHz returns the platform's frequency ladder in kHz, fastest
// first. It prefers scaling_available_frequencies and falls back to
// the min/max pair when the driver does not enumerate steps.
func (i *Interface) AvailableKHz() ([]uint64, error) {
	if s, err := i.read("scaling_available_frequencies"); err == nil && s != "" {
		fields := strings.Fields(s)
		out := make([]uint64, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cpufreq: malformed frequency %q: %w", f, err)
			}
			out = append(out, v)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("cpufreq: empty frequency list")
		}
		sort.Slice(out, func(a, b int) bool { return out[a] > out[b] })
		return out, nil
	}
	minS, err := i.read("cpuinfo_min_freq")
	if err != nil {
		return nil, err
	}
	maxS, err := i.read("cpuinfo_max_freq")
	if err != nil {
		return nil, err
	}
	minV, err := strconv.ParseUint(minS, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cpufreq: malformed min frequency %q: %w", minS, err)
	}
	maxV, err := strconv.ParseUint(maxS, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cpufreq: malformed max frequency %q: %w", maxS, err)
	}
	if maxV < minV {
		return nil, fmt.Errorf("cpufreq: max %d below min %d", maxV, minV)
	}
	if maxV == minV {
		return []uint64{maxV}, nil
	}
	return []uint64{maxV, minV}, nil
}

// CurrentKHz returns the current scaling frequency.
func (i *Interface) CurrentKHz() (uint64, error) {
	s, err := i.read("scaling_cur_freq")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cpufreq: malformed current frequency %q: %w", s, err)
	}
	return v, nil
}

// Governor returns the active scaling governor.
func (i *Interface) Governor() (string, error) {
	return i.read("scaling_governor")
}

// SetGovernor selects a scaling governor (userspace is required for
// SetKHz to take effect).
func (i *Interface) SetGovernor(name string) error {
	if name == "" {
		return fmt.Errorf("cpufreq: empty governor name")
	}
	return i.write("scaling_governor", name)
}

// SetKHz requests a frequency via scaling_setspeed.
func (i *Interface) SetKHz(khz uint64) error {
	if khz == 0 {
		return fmt.Errorf("cpufreq: zero frequency")
	}
	return i.write("scaling_setspeed", strconv.FormatUint(khz, 10))
}

// Actuator maps ladder-style settings (0 = fastest) onto SetKHz calls,
// skipping redundant writes the way the paper's handler skips
// redundant mode-set writes.
type Actuator struct {
	iface *Interface
	freqs []uint64
	cur   int
}

// NewActuator snapshots the frequency ladder and positions the
// actuator at the fastest setting without writing yet.
func NewActuator(iface *Interface) (*Actuator, error) {
	freqs, err := iface.AvailableKHz()
	if err != nil {
		return nil, err
	}
	return &Actuator{iface: iface, freqs: freqs, cur: -1}, nil
}

// Len returns the number of settings.
func (a *Actuator) Len() int { return len(a.freqs) }

// FrequencyKHz returns the frequency of a setting.
func (a *Actuator) FrequencyKHz(setting int) (uint64, error) {
	if setting < 0 || setting >= len(a.freqs) {
		return 0, fmt.Errorf("cpufreq: setting %d out of range [0,%d)", setting, len(a.freqs))
	}
	return a.freqs[setting], nil
}

// Set applies a setting, writing only on change.
func (a *Actuator) Set(setting int) error {
	khz, err := a.FrequencyKHz(setting)
	if err != nil {
		return err
	}
	if setting == a.cur {
		return nil
	}
	if err := a.iface.SetKHz(khz); err != nil {
		return err
	}
	a.cur = setting
	return nil
}

// Current returns the last applied setting, or -1 before the first Set.
func (a *Actuator) Current() int { return a.cur }

package trace

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzReadCSVNeverPanics(f *testing.F) {
	var valid bytes.Buffer
	l := NewLog()
	l.Append(Record{Index: 0, DurS: 0.1, Uops: 1e8, Actual: 3})
	if err := l.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("")
	f.Add("a,b,c\n1,2,3\n")
	f.Add(strings.Repeat(",", 15) + "\n")
	f.Fuzz(func(t *testing.T, s string) {
		// Must never panic; errors are fine.
		log, err := ReadCSV(strings.NewReader(s))
		if err == nil && log == nil {
			t.Fatal("nil log with nil error")
		}
	})
}

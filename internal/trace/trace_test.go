package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"phasemon/internal/phase"
)

func sampleLog() *Log {
	l := NewLog()
	l.Append(Record{
		Index: 0, StartS: 0, DurS: 0.1, Uops: 100e6, Instructions: 90e6,
		MemTransactions: 1e6, Cycles: 1.5e8, MemPerUop: 0.01, UPC: 0.67,
		Actual: 3, Predicted: phase.None, Setting: 0, FreqHz: 1.5e9,
		PowerW: 9.5, EnergyJ: 0.95,
	})
	l.Append(Record{
		Index: 1, StartS: 0.1, DurS: 0.12, Uops: 100e6, Instructions: 91e6,
		MemTransactions: 3.2e6, Cycles: 1.4e8, MemPerUop: 0.032, UPC: 0.7,
		Actual: 6, Predicted: 3, Setting: 5, FreqHz: 600e6,
		PowerW: 2.1, EnergyJ: 0.252,
	})
	return l
}

func TestLogAccessors(t *testing.T) {
	l := sampleLog()
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.At(1).Actual != 6 {
		t.Errorf("At(1).Actual = %v", l.At(1).Actual)
	}
	if got := l.MemPerUopSeries(); len(got) != 2 || got[1] != 0.032 {
		t.Errorf("MemPerUopSeries = %v", got)
	}
	if got := l.PhaseSeries(); got[0] != 3 || got[1] != 6 {
		t.Errorf("PhaseSeries = %v", got)
	}
	if got := l.PredictedSeries(); got[0] != phase.None || got[1] != 3 {
		t.Errorf("PredictedSeries = %v", got)
	}
	if len(l.Records()) != 2 {
		t.Errorf("Records len = %d", len(l.Records()))
	}
}

func TestRecordBIPS(t *testing.T) {
	r := Record{Instructions: 90e6, DurS: 0.1}
	if got := r.BIPS(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("BIPS = %v, want 0.9", got)
	}
	if (Record{}).BIPS() != 0 {
		t.Error("zero-duration BIPS should be 0")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), l.Len())
	}
	for i := 0; i < l.Len(); i++ {
		if got.At(i) != l.At(i) {
			t.Errorf("record %d: %+v != %+v", i, got.At(i), l.At(i))
		}
	}
}

func TestCSVHeaderPresent(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range []string{"mem_per_uop", "actual_phase", "predicted_phase", "power_w", "bips"} {
		if !strings.Contains(first, col) {
			t.Errorf("header missing %q: %s", col, first)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"only,two\n",
		// Right-looking header but a malformed numeric field.
		func() string {
			var buf bytes.Buffer
			if err := sampleLog().WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			return strings.Replace(buf.String(), "0.032", "not-a-number", 1)
		}(),
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEmptyLogWritesHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := NewLog().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Errorf("expected header only, got %d lines", len(lines))
	}
	l, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Errorf("empty round trip Len = %d", l.Len())
	}
}

func TestSummarize(t *testing.T) {
	l := sampleLog()
	s := l.Summarize()
	if s.Intervals != 2 {
		t.Fatalf("Intervals = %d", s.Intervals)
	}
	if math.Abs(s.TimeS-0.22) > 1e-12 || math.Abs(s.EnergyJ-1.202) > 1e-12 {
		t.Errorf("time %v energy %v", s.TimeS, s.EnergyJ)
	}
	if math.Abs(s.AvgPowerW-1.202/0.22) > 1e-9 {
		t.Errorf("AvgPowerW = %v", s.AvgPowerW)
	}
	if math.Abs(s.AvgMemPerUop-(0.01+0.032)/2) > 1e-12 {
		t.Errorf("AvgMemPerUop = %v", s.AvgMemPerUop)
	}
	// The first record has Predicted == None: unscored; the second was
	// a misprediction (3 vs actual 6).
	if s.Predicted != 1 || s.Correct != 0 {
		t.Errorf("Predicted/Correct = %d/%d", s.Predicted, s.Correct)
	}
	if _, ok := s.Accuracy(); !ok {
		t.Error("Accuracy should be available")
	}
	var empty Log
	if _, ok := empty.Summarize().Accuracy(); ok {
		t.Error("empty log should report no accuracy")
	}
}

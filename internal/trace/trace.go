// Package trace records per-interval execution logs — the simulated
// counterpart of the paper's kernel log plus the logging machine's
// power record — and exports them for analysis and plotting.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"phasemon/internal/phase"
)

// Record captures everything observed about one sampling interval.
type Record struct {
	// Index is the interval's ordinal within the run, starting at 0.
	Index int
	// StartS and DurS place the interval in simulated time (seconds).
	StartS float64
	DurS   float64
	// Uops, Instructions and MemTransactions are the counter deltas.
	Uops            float64
	Instructions    float64
	MemTransactions float64
	// Cycles is the TSC delta over the interval.
	Cycles float64
	// MemPerUop and UPC are the derived metrics.
	MemPerUop float64
	UPC       float64
	// Actual is the phase the interval was classified into; Predicted
	// is what the predictor had forecast for it (None for the first
	// interval).
	Actual    phase.ID
	Predicted phase.ID
	// Setting is the DVFS setting the interval ran at, and FreqHz its
	// frequency.
	Setting int
	FreqHz  float64
	// PowerW is the interval's average power, EnergyJ its energy.
	PowerW  float64
	EnergyJ float64
}

// BIPS returns the interval's billions of instructions per second.
func (r Record) BIPS() float64 {
	if r.DurS <= 0 {
		return 0
	}
	return r.Instructions / r.DurS / 1e9
}

// Log is an append-only sequence of interval records.
type Log struct {
	records []Record
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// NewLogWithCap returns an empty log whose backing array holds n
// records without growing — the grow-once path for builders that know
// the record count up front (ToTrace, CSV import, waveform reduction).
func NewLogWithCap(n int) *Log {
	if n <= 0 {
		return &Log{}
	}
	return &Log{records: make([]Record, 0, n)}
}

// Append adds a record.
func (l *Log) Append(r Record) { l.records = append(l.records, r) }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// At returns the i-th record; it panics when out of range, mirroring
// slice semantics.
func (l *Log) At(i int) Record { return l.records[i] }

// Records returns the backing slice for read-only iteration. Callers
// must not modify it.
func (l *Log) Records() []Record { return l.records }

// MemPerUopSeries extracts the per-interval phase metric, the series
// Figures 2 and 10 plot.
func (l *Log) MemPerUopSeries() []float64 {
	out := make([]float64, len(l.records))
	for i, r := range l.records {
		out[i] = r.MemPerUop
	}
	return out
}

// PhaseSeries extracts the actual phase IDs.
func (l *Log) PhaseSeries() []phase.ID {
	out := make([]phase.ID, len(l.records))
	for i, r := range l.records {
		out[i] = r.Actual
	}
	return out
}

// PredictedSeries extracts the predicted phase IDs.
func (l *Log) PredictedSeries() []phase.ID {
	out := make([]phase.ID, len(l.records))
	for i, r := range l.records {
		out[i] = r.Predicted
	}
	return out
}

// csvHeader lists the exported columns, in order.
var csvHeader = []string{
	"index", "start_s", "dur_s", "uops", "instructions", "mem_tx",
	"cycles", "mem_per_uop", "upc", "actual_phase", "predicted_phase",
	"setting", "freq_hz", "power_w", "energy_j", "bips",
}

// WriteCSV exports the log with one row per interval.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, r := range l.records {
		row := []string{
			strconv.Itoa(r.Index),
			fmtF(r.StartS), fmtF(r.DurS),
			fmtF(r.Uops), fmtF(r.Instructions), fmtF(r.MemTransactions),
			fmtF(r.Cycles), fmtF(r.MemPerUop), fmtF(r.UPC),
			strconv.Itoa(int(r.Actual)), strconv.Itoa(int(r.Predicted)),
			strconv.Itoa(r.Setting), fmtF(r.FreqHz),
			fmtF(r.PowerW), fmtF(r.EnergyJ), fmtF(r.BIPS()),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", r.Index, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ReadCSV parses a log previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	l := NewLogWithCap(len(rows) - 1)
	for i, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		l.Append(rec)
	}
	return l, nil
}

func parseRow(row []string) (Record, error) {
	if len(row) != len(csvHeader) {
		return Record{}, fmt.Errorf("has %d columns, want %d", len(row), len(csvHeader))
	}
	var r Record
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	r.Index = geti(row[0])
	r.StartS = getf(row[1])
	r.DurS = getf(row[2])
	r.Uops = getf(row[3])
	r.Instructions = getf(row[4])
	r.MemTransactions = getf(row[5])
	r.Cycles = getf(row[6])
	r.MemPerUop = getf(row[7])
	r.UPC = getf(row[8])
	r.Actual = phase.ID(geti(row[9]))
	r.Predicted = phase.ID(geti(row[10]))
	r.Setting = geti(row[11])
	r.FreqHz = getf(row[12])
	r.PowerW = getf(row[13])
	r.EnergyJ = getf(row[14])
	// Column 15 (bips) is derived; ignore on read.
	return r, err
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Summary aggregates a log into run totals — the quick-look numbers a
// user-level tool prints after reading the kernel log.
type Summary struct {
	Intervals    int
	TimeS        float64
	Uops         float64
	Instructions float64
	EnergyJ      float64
	AvgPowerW    float64
	AvgMemPerUop float64
	// Correct counts intervals whose prediction matched (the first,
	// unpredicted interval is excluded from Predicted).
	Correct   int
	Predicted int
}

// Accuracy returns the fraction of scored predictions that were
// correct, and false when nothing was scored.
func (s Summary) Accuracy() (float64, bool) {
	if s.Predicted == 0 {
		return 0, false
	}
	return float64(s.Correct) / float64(s.Predicted), true
}

// Summarize reduces the log.
func (l *Log) Summarize() Summary {
	var s Summary
	var memSum float64
	for _, r := range l.records {
		s.Intervals++
		s.TimeS += r.DurS
		s.Uops += r.Uops
		s.Instructions += r.Instructions
		s.EnergyJ += r.EnergyJ
		memSum += r.MemPerUop
		if r.Predicted != phase.None {
			s.Predicted++
			if r.Predicted == r.Actual {
				s.Correct++
			}
		}
	}
	if s.Intervals > 0 {
		s.AvgMemPerUop = memSum / float64(s.Intervals)
	}
	if s.TimeS > 0 {
		s.AvgPowerW = s.EnergyJ / s.TimeS
	}
	return s
}

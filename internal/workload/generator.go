// Package workload synthesizes the execution-interval streams the
// framework monitors: per-interval (Mem/Uop, core UPC) demands.
//
// The paper evaluates on SPEC CPU2000. Those binaries and inputs (and
// the Pentium-M they ran on) are not available here, so each of the
// paper's 33 benchmark/input pairs is replaced by a deterministic
// synthetic generator calibrated to the benchmark's coordinates in the
// paper's Figure 3 — average memory-boundedness (power-savings
// potential) and sample variation — and to its phase-pattern class:
// steady, slowly drifting, periodically bursting, or rapidly cycling
// through repetitive motifs. The predictor and the DVFS governor only
// ever observe per-interval counter values, so matching these
// statistics and pattern shapes preserves the behavior the paper
// measures. The package also implements the paper's IPCxMEM suite:
// configurable microbenchmarks that pin arbitrary (UPC, Mem/Uop) grid
// coordinates (Section 4).
package workload

import (
	"fmt"
	"math/rand"

	"phasemon/internal/cpusim"
)

// Generator yields successive execution intervals of a program. A
// generator is deterministic: after Reset it reproduces the same
// sequence.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next interval's demand, or ok=false when the
	// program has run to completion.
	Next() (w cpusim.Work, ok bool)
	// Reset restarts the sequence from the beginning.
	Reset()
}

// series produces one Mem/Uop value per call. Implementations are
// stateful; they are rebuilt from the profile's recipe on Reset.
type series func() float64

// recipe constructs a fresh Mem/Uop series from a seeded random
// source.
type recipe func(rng *rand.Rand) series

// clampMem keeps generated Mem/Uop values physical.
func clampMem(m float64) float64 {
	if m < 0 {
		return 0
	}
	if m > 0.25 {
		return 0.25
	}
	return m
}

// steady emits a constant level with Gaussian jitter.
func steady(level, jitter float64) recipe {
	return func(rng *rand.Rand) series {
		return func() float64 {
			return clampMem(level + rng.NormFloat64()*jitter)
		}
	}
}

// cycle repeats a fixed motif of Mem/Uop levels, each with Gaussian
// jitter, and — with probability disturb per interval — replaces the
// scheduled value with a random element of the motif, modeling the
// data-dependent irregularities that keep real pattern predictors
// below 100%.
func cycle(motif []float64, jitter, disturb float64) recipe {
	cp := make([]float64, len(motif))
	copy(cp, motif)
	return func(rng *rand.Rand) series {
		i := 0
		return func() float64 {
			v := cp[i%len(cp)]
			i++
			if disturb > 0 && rng.Float64() < disturb {
				v = cp[rng.Intn(len(cp))]
			}
			return clampMem(v + rng.NormFloat64()*jitter)
		}
	}
}

// bursts emits a base level with aperiodic excursions: gaps between
// bursts and burst lengths are geometrically distributed, so the
// excursions carry no learnable pattern.
func bursts(base, burst float64, meanGap, meanLen, jitter float64) recipe {
	return func(rng *rand.Rand) series {
		inBurst := false
		left := 0
		draw := func(mean float64) int {
			if mean < 1 {
				mean = 1
			}
			// Geometric with the given mean, at least 1.
			return 1 + int(rng.ExpFloat64()*(mean-1)+0.5)
		}
		return func() float64 {
			if left == 0 {
				inBurst = !inBurst
				if inBurst {
					left = draw(meanLen)
				} else {
					left = draw(meanGap)
				}
			}
			left--
			v := base
			if inBurst {
				v = burst
			}
			return clampMem(v + rng.NormFloat64()*jitter)
		}
	}
}

// burstsFixed is like bursts but with a deterministic burst length:
// the burst *interior and end* become learnable pattern (a fixed-size
// excursion) while the burst arrival stays memoryless. Real codes with
// fixed-size periodic work items (e.g. a compiler's per-function
// optimization passes) behave this way.
func burstsFixed(base, burst float64, meanGap float64, burstLen int, jitter float64) recipe {
	if burstLen < 1 {
		burstLen = 1
	}
	return func(rng *rand.Rand) series {
		inBurst := false
		left := 0
		return func() float64 {
			if left == 0 {
				inBurst = !inBurst
				if inBurst {
					left = burstLen
				} else {
					g := meanGap
					if g < 1 {
						g = 1
					}
					left = 1 + int(rng.ExpFloat64()*(g-1)+0.5)
				}
			}
			left--
			v := base
			if inBurst {
				v = burst
			}
			return clampMem(v + rng.NormFloat64()*jitter)
		}
	}
}

// walk emits a bounded random walk between lo and hi with the given
// per-interval step scale — the slow drift of compiler-style codes.
func walk(lo, hi, step float64) recipe {
	return func(rng *rand.Rand) series {
		v := (lo + hi) / 2
		return func() float64 {
			v += rng.NormFloat64() * step
			if v < lo {
				v = lo + (lo - v)
			}
			if v > hi {
				v = hi - (v - hi)
			}
			if v < lo {
				v = lo
			}
			return clampMem(v)
		}
	}
}

// square alternates between two levels with the given dwell lengths —
// slow program-section alternation (e.g. apsi's solver sweeps).
func square(a, b float64, dwellA, dwellB int, jitter float64) recipe {
	return func(rng *rand.Rand) series {
		i := 0
		period := dwellA + dwellB
		return func() float64 {
			v := a
			if i%period >= dwellA {
				v = b
			}
			i++
			return clampMem(v + rng.NormFloat64()*jitter)
		}
	}
}

// pieces concatenates recipes, running each for the given number of
// intervals and cycling back to the first — multi-section programs.
func pieces(parts ...piece) recipe {
	return func(rng *rand.Rand) series {
		idx, left := 0, 0
		var cur series
		return func() float64 {
			for left == 0 {
				p := parts[idx%len(parts)]
				idx++
				left = p.n
				cur = p.r(rng)
			}
			left--
			return cur()
		}
	}
}

// piece is one section of a multi-part recipe.
type piece struct {
	n int
	r recipe
}

// profileGen adapts a Profile into a Generator.
type profileGen struct {
	p       *Profile
	params  Params
	total   int
	rng     *rand.Rand
	mem     series
	emitted int
}

// Params configures generator instantiation.
type Params struct {
	// GranularityUops is the uop length of each emitted interval; it
	// normally equals the monitoring framework's sampling granularity
	// (100M in the paper). Zero selects 100e6.
	GranularityUops float64
	// Seed drives all stochastic elements; the same seed reproduces
	// the same program.
	Seed int64
	// Intervals overrides the profile's default run length when > 0.
	Intervals int
}

func (p Params) withDefaults() Params {
	if p.GranularityUops <= 0 {
		p.GranularityUops = 100e6
	}
	return p
}

// Name implements Generator.
func (g *profileGen) Name() string { return g.p.Name }

// Next implements Generator.
func (g *profileGen) Next() (cpusim.Work, bool) {
	if g.emitted >= g.total {
		return cpusim.Work{}, false
	}
	g.emitted++
	mem := g.mem()
	coreUPC := g.p.coreUPC(mem)
	// Small multiplicative jitter keeps UPC from being unrealistically
	// flat without perturbing the phase metric.
	coreUPC *= 1 + g.rng.NormFloat64()*0.02
	if coreUPC < 0.05 {
		coreUPC = 0.05
	}
	return cpusim.Work{
		Uops:         g.params.GranularityUops,
		Instructions: g.params.GranularityUops / g.p.UopsPerInstr,
		MemPerUop:    mem,
		CoreUPC:      coreUPC,
		MLP:          g.p.MLP,
	}, true
}

// Reset implements Generator.
func (g *profileGen) Reset() {
	g.rng = rand.New(rand.NewSource(g.params.Seed))
	g.mem = g.p.recipe(g.rng)
	g.emitted = 0
}

// coreUPC derives the benchmark's compute-side UPC for an interval
// with the given memory intensity. The dependence is gentle: in
// memory-bound regions the core still issues quickly between stalls —
// the stalls themselves, not reduced ILP, dominate the interval (which
// is what gives those regions their DVFS slack).
func (p *Profile) coreUPC(mem float64) float64 {
	u := p.CoreUPCMax * (1 - 2*mem)
	if u < 0.25 {
		u = 0.25
	}
	return u
}

// Generator instantiates the profile as a deterministic workload.
func (p *Profile) Generator(params Params) Generator {
	params = params.withDefaults()
	total := p.DefaultIntervals
	if params.Intervals > 0 {
		total = params.Intervals
	}
	g := &profileGen{p: p, params: params, total: total}
	g.Reset()
	return g
}

// Collect drains up to max intervals from a generator (all of them
// when max <= 0) and returns the work items. It is a convenience for
// evaluations that need the whole trace up front.
func Collect(g Generator, max int) []cpusim.Work {
	var out []cpusim.Work
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		w, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, w)
	}
}

// MemSeries extracts the Mem/Uop values of a work slice.
func MemSeries(ws []cpusim.Work) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w.MemPerUop
	}
	return out
}

// IPCxMEM returns a generator that holds a single (UPC, Mem/Uop)
// coordinate of the paper's IPCxMEM suite for n intervals: the
// configurable microbenchmarks used to map the exploration space
// (Figure 6) and to verify metric behavior under DVFS (Figure 7).
// The coordinate is realized exactly at refFreqHz.
func IPCxMEM(model *cpusim.Model, targetUPC, memPerUop, refFreqHz, granularityUops float64, n int) (Generator, error) {
	w, err := model.GridWork(targetUPC, memPerUop, refFreqHz, granularityUops)
	if err != nil {
		return nil, fmt.Errorf("workload: building IPCxMEM point: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: IPCxMEM needs at least 1 interval, got %d", n)
	}
	return &fixedGen{
		name:  fmt.Sprintf("ipcxmem_u%.2f_m%.4f", targetUPC, memPerUop),
		work:  w,
		total: n,
	}, nil
}

// fixedGen emits the same interval n times.
type fixedGen struct {
	name    string
	work    cpusim.Work
	total   int
	emitted int
}

func (g *fixedGen) Name() string { return g.name }

func (g *fixedGen) Next() (cpusim.Work, bool) {
	if g.emitted >= g.total {
		return cpusim.Work{}, false
	}
	g.emitted++
	return g.work, true
}

func (g *fixedGen) Reset() { g.emitted = 0 }

// GridPoint is one IPCxMEM suite configuration.
type GridPoint struct {
	UPC       float64
	MemPerUop float64
}

// SPECBoundary returns the maximum UPC observed at a given Mem/Uop
// rate across applications — the empirical boundary curve of the
// paper's Figure 6. High memory traffic slows dependent execution, so
// achievable UPC falls hyperbolically with memory intensity. The
// curve reflects the memory-level parallelism real code extracts,
// which is why it sits above the serialized-miss analytic bound.
func SPECBoundary(memPerUop float64) float64 {
	if memPerUop < 0 {
		memPerUop = 0
	}
	return 1 / (1/2.0 + 35*memPerUop)
}

// IPCxMEMGrid enumerates the suite configurations covering the
// exploration space: the cross product of UPC levels and Mem/Uop
// levels, filtered to the achievable region under the SPEC boundary
// (high memory traffic caps achievable UPC). It mirrors the ~50-point
// grid of the paper's Figure 6.
func IPCxMEMGrid() []GridPoint {
	upcs := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9}
	mems := []float64{0, 0.0025, 0.0075, 0.0125, 0.0175, 0.0225, 0.0275, 0.0325, 0.0375, 0.0425, 0.0475}
	var out []GridPoint
	for _, m := range mems {
		bound := SPECBoundary(m)
		for _, u := range upcs {
			if u <= bound {
				out = append(out, GridPoint{UPC: u, MemPerUop: m})
			}
		}
	}
	return out
}

// Figure7Points returns the eleven grid configurations whose
// frequency behavior the paper's Figure 7 plots.
func Figure7Points() []GridPoint {
	return []GridPoint{
		{1.9, 0.0000},
		{1.3, 0.0075},
		{0.9, 0.0125},
		{0.9, 0.0075},
		{0.9, 0.0000},
		{0.5, 0.0225},
		{0.5, 0.0025},
		{0.5, 0.0000},
		{0.1, 0.0475},
		{0.1, 0.0325},
		{0.1, 0.0000},
	}
}

package workload_test

import (
	"fmt"

	"phasemon/internal/memhier"
	"phasemon/internal/workload"
)

// Instantiating a paper benchmark and inspecting its stream.
func ExampleProfile_Generator() {
	prof, err := workload.ByName("applu_in")
	if err != nil {
		fmt.Println(err)
		return
	}
	gen := prof.Generator(workload.Params{Seed: 1, Intervals: 3})
	for {
		w, ok := gen.Next()
		if !ok {
			break
		}
		fmt.Printf("interval: %.0fM uops, Mem/Uop %.4f\n", w.Uops/1e6, w.MemPerUop)
	}
	// Output:
	// interval: 100M uops, Mem/Uop 0.0239
	// interval: 100M uops, Mem/Uop 0.0242
	// interval: 100M uops, Mem/Uop 0.0081
}

// Describing a program by its working sets instead of counter values:
// the memory hierarchy derives the phase metric.
func ExampleFromLocality() {
	hier := memhier.Default()
	gen, err := workload.FromLocality("ws", hier, []workload.LocalityPhase{
		{Profile: memhier.AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 16 << 10}, Intervals: 1, CoreUPC: 1.5},
		{Profile: memhier.AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 64 << 20, SpatialRun: 4}, Intervals: 1, CoreUPC: 0.8},
	}, 100e6, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for {
		w, ok := gen.Next()
		if !ok {
			break
		}
		fmt.Printf("Mem/Uop %.4f\n", w.MemPerUop)
	}
	// Output:
	// Mem/Uop 0.0001
	// Mem/Uop 0.0861
}

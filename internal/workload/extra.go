package workload

import (
	"fmt"
	"strings"

	"phasemon/internal/cpusim"
	"phasemon/internal/memhier"
)

// Replay returns a generator that plays back an explicit interval
// sequence — e.g. one captured from a previous run's kernel log or
// constructed by hand.
func Replay(name string, works []cpusim.Work) (Generator, error) {
	if len(works) == 0 {
		return nil, fmt.Errorf("workload: replay %q needs at least one interval", name)
	}
	cp := make([]cpusim.Work, len(works))
	copy(cp, works)
	for i, w := range cp {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("workload: replay %q interval %d: %w", name, i, err)
		}
	}
	return &replayGen{name: name, works: cp}, nil
}

type replayGen struct {
	name  string
	works []cpusim.Work
	i     int
}

func (g *replayGen) Name() string { return g.name }

func (g *replayGen) Next() (cpusim.Work, bool) {
	if g.i >= len(g.works) {
		return cpusim.Work{}, false
	}
	w := g.works[g.i]
	g.i++
	return w, true
}

func (g *replayGen) Reset() { g.i = 0 }

// Interleave time-slices two programs the way an OS scheduler does,
// switching between them every quantum sampling intervals. From the
// monitoring framework's perspective this is one "workload" whose
// phase behavior interleaves both programs' — the system-induced
// variability the paper's fixed-instruction sampling is designed to be
// resilient against. The combined program ends when both inputs end
// (the other continues alone after one finishes).
func Interleave(a, b Generator, quantum int) (Generator, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("workload: interleave needs two generators")
	}
	if quantum < 1 {
		return nil, fmt.Errorf("workload: interleave quantum %d must be at least 1", quantum)
	}
	return &interleaveGen{a: a, b: b, quantum: quantum}, nil
}

type interleaveGen struct {
	a, b    Generator
	quantum int

	onB   bool
	slice int
	aDone bool
	bDone bool
}

func (g *interleaveGen) Name() string {
	return fmt.Sprintf("%s+%s", g.a.Name(), g.b.Name())
}

func (g *interleaveGen) Next() (cpusim.Work, bool) {
	for {
		if g.aDone && g.bDone {
			return cpusim.Work{}, false
		}
		// Switch at quantum boundaries (or when the current program
		// has finished).
		if g.slice >= g.quantum {
			g.onB = !g.onB
			g.slice = 0
		}
		cur := g.a
		done := &g.aDone
		if g.onB {
			cur = g.b
			done = &g.bDone
		}
		if *done {
			g.onB = !g.onB
			g.slice = 0
			continue
		}
		w, ok := cur.Next()
		if !ok {
			*done = true
			g.onB = !g.onB
			g.slice = 0
			continue
		}
		g.slice++
		return w, true
	}
}

func (g *interleaveGen) Reset() {
	g.a.Reset()
	g.b.Reset()
	g.onB = false
	g.slice = 0
	g.aDone = false
	g.bDone = false
}

// LocalityPhase is one section of a locality-described program: an
// access profile held for a number of sampling intervals.
type LocalityPhase struct {
	Profile   memhier.AccessProfile
	Intervals int
	// CoreUPC is the section's compute-side uops per cycle.
	CoreUPC float64
}

// FromLocality builds a generator whose Mem/Uop rates are *derived*
// from program locality through the memory-hierarchy model, rather
// than specified directly — working-set behavior in, Table 1 phases
// out. The section list repeats until total intervals have been
// emitted.
func FromLocality(name string, hier *memhier.Model, sections []LocalityPhase, granularityUops float64, total int) (Generator, error) {
	if hier == nil {
		return nil, fmt.Errorf("workload: FromLocality needs a memory-hierarchy model")
	}
	if len(sections) == 0 {
		return nil, fmt.Errorf("workload: FromLocality needs at least one section")
	}
	if total < 1 {
		return nil, fmt.Errorf("workload: FromLocality needs a positive interval count")
	}
	if granularityUops <= 0 {
		granularityUops = 100e6
	}
	// Pre-derive each section's work template.
	templates := make([]cpusim.Work, len(sections))
	counts := make([]int, len(sections))
	for i, sec := range sections {
		if sec.Intervals < 1 {
			return nil, fmt.Errorf("workload: section %d has no intervals", i)
		}
		if !(sec.CoreUPC > 0) {
			return nil, fmt.Errorf("workload: section %d has invalid core UPC %v", i, sec.CoreUPC)
		}
		mem, err := hier.MemPerUop(sec.Profile)
		if err != nil {
			return nil, fmt.Errorf("workload: section %d: %w", i, err)
		}
		templates[i] = cpusim.Work{
			Uops:      granularityUops,
			MemPerUop: mem,
			CoreUPC:   sec.CoreUPC,
			MLP:       1,
		}
		counts[i] = sec.Intervals
	}
	return &localityGen{name: name, templates: templates, counts: counts, total: total}, nil
}

type localityGen struct {
	name      string
	templates []cpusim.Work
	counts    []int
	total     int

	emitted int
	section int
	inSec   int
}

func (g *localityGen) Name() string { return g.name }

func (g *localityGen) Next() (cpusim.Work, bool) {
	if g.emitted >= g.total {
		return cpusim.Work{}, false
	}
	if g.inSec >= g.counts[g.section] {
		g.section = (g.section + 1) % len(g.templates)
		g.inSec = 0
	}
	g.inSec++
	g.emitted++
	return g.templates[g.section], true
}

func (g *localityGen) Reset() {
	g.emitted = 0
	g.section = 0
	g.inSec = 0
}

// Concat runs programs back to back — a batch of jobs on one machine.
// The monitoring framework sees one continuous stream whose phase
// behavior changes completely at each job boundary.
func Concat(gens ...Generator) (Generator, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("workload: Concat needs at least one generator")
	}
	for i, g := range gens {
		if g == nil {
			return nil, fmt.Errorf("workload: Concat generator %d is nil", i)
		}
	}
	return &concatGen{gens: gens}, nil
}

type concatGen struct {
	gens []Generator
	i    int
}

func (g *concatGen) Name() string {
	names := make([]string, len(g.gens))
	for i, sub := range g.gens {
		names[i] = sub.Name()
	}
	return strings.Join(names, ";")
}

func (g *concatGen) Next() (cpusim.Work, bool) {
	for g.i < len(g.gens) {
		if w, ok := g.gens[g.i].Next(); ok {
			return w, true
		}
		g.i++
	}
	return cpusim.Work{}, false
}

func (g *concatGen) Reset() {
	for _, sub := range g.gens {
		sub.Reset()
	}
	g.i = 0
}

package workload

import (
	"math"
	"testing"

	"phasemon/internal/cpusim"
	"phasemon/internal/phase"
	"phasemon/internal/stats"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 33 {
		t.Fatalf("registry has %d profiles, want the paper's 33", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.Name == "" {
			t.Fatal("profile with empty name")
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.DefaultIntervals < 100 {
			t.Errorf("%s: DefaultIntervals %d too short", p.Name, p.DefaultIntervals)
		}
		if !(p.CoreUPCMax > 0) || !(p.MLP > 0) || !(p.UopsPerInstr >= 1) {
			t.Errorf("%s: bad parameters %+v", p.Name, p)
		}
		if p.Quadrant < stats.Q1 || p.Quadrant > stats.Q4 {
			t.Errorf("%s: bad quadrant %v", p.Name, p.Quadrant)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("applu_in")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "applu_in" {
		t.Errorf("got %q", p.Name)
	}
	if _, err := ByName("no_such_benchmark"); err == nil {
		t.Error("expected error for unknown name")
	}
	names := Names()
	if len(names) != 33 {
		t.Errorf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("Names() not sorted at %d: %q, %q", i, names[i-1], names[i])
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("applu_in")
	params := Params{Seed: 42, Intervals: 200}
	a := Collect(p.Generator(params), 0)
	b := Collect(p.Generator(params), 0)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Reset reproduces the sequence on the same generator.
	g := p.Generator(params)
	first := Collect(g, 0)
	g.Reset()
	second := Collect(g, 0)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Reset: interval %d differs", i)
		}
	}
	// A different seed produces a different sequence.
	c := Collect(p.Generator(Params{Seed: 43, Intervals: 200}), 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestGeneratorLengths(t *testing.T) {
	p, _ := ByName("crafty_in")
	if got := len(Collect(p.Generator(Params{Seed: 1}), 0)); got != p.DefaultIntervals {
		t.Errorf("default length = %d, want %d", got, p.DefaultIntervals)
	}
	if got := len(Collect(p.Generator(Params{Seed: 1, Intervals: 50}), 0)); got != 50 {
		t.Errorf("override length = %d, want 50", got)
	}
	// Collect's max argument truncates.
	if got := len(Collect(p.Generator(Params{Seed: 1}), 10)); got != 10 {
		t.Errorf("Collect max = %d, want 10", got)
	}
	// Exhausted generators stay exhausted.
	g := p.Generator(Params{Seed: 1, Intervals: 3})
	Collect(g, 0)
	if _, ok := g.Next(); ok {
		t.Error("generator yielded work after completion")
	}
}

func TestAllProfilesProduceValidWork(t *testing.T) {
	for _, p := range All() {
		g := p.Generator(Params{Seed: 7, Intervals: 400})
		n := 0
		for {
			w, ok := g.Next()
			if !ok {
				break
			}
			n++
			if err := w.Validate(); err != nil {
				t.Fatalf("%s interval %d: %v (work %+v)", p.Name, n, err, w)
			}
			if w.Uops != 100e6 {
				t.Fatalf("%s: granularity default not applied: %v", p.Name, w.Uops)
			}
			if w.Instructions > w.Uops {
				t.Fatalf("%s: more instructions than uops: %+v", p.Name, w)
			}
		}
		if n != 400 {
			t.Fatalf("%s: produced %d intervals", p.Name, n)
		}
	}
}

func TestProfileCalibrationMatchesDeclaredQuadrant(t *testing.T) {
	// The paper's canonical Q2/Q3/Q4 benchmarks must land in their
	// declared Figure 3 quadrants under the default splits; the other
	// benchmarks must not claim Q2/Q3 (high savings potential).
	canonical := map[string]bool{}
	for _, p := range Figure12Set() {
		canonical[p.Name] = true
	}
	for _, p := range All() {
		ws := Collect(p.Generator(Params{Seed: 11}), 0)
		mem := MemSeries(ws)
		avg := stats.Mean(mem)
		vari := stats.Variation(mem, 0.005)
		got := stats.Classify(avg, vari, stats.DefaultSavingsSplit, stats.DefaultVariationSplit)
		if canonical[p.Name] {
			if got != p.Quadrant {
				t.Errorf("%s: measured %v (avg=%.4f var=%.2f), declared %v",
					p.Name, got, avg, vari, p.Quadrant)
			}
		} else if got == stats.Q2 || got == stats.Q3 {
			t.Errorf("%s: measured %v (avg=%.4f var=%.2f) but is not a high-savings benchmark",
				p.Name, got, avg, vari)
		}
	}
}

func TestAppluMotifAdjacentEquality(t *testing.T) {
	// Roughly 46% adjacent-equal phases: last-value prediction must
	// fail more than half the time on the pure pattern.
	m := appluMotif()
	tab := phase.Default()
	same := 0
	for i := 0; i < len(m); i++ {
		a := tab.Classify(phase.Sample{MemPerUop: m[i]})
		b := tab.Classify(phase.Sample{MemPerUop: m[(i+1)%len(m)]})
		if a == b {
			same++
		}
	}
	frac := float64(same) / float64(len(m))
	if frac < 0.40 || frac > 0.52 {
		t.Errorf("applu motif adjacent-equal fraction = %.2f, want ~0.46", frac)
	}
}

func TestMemSeries(t *testing.T) {
	ws := []cpusim.Work{{MemPerUop: 0.1}, {MemPerUop: 0.2}}
	got := MemSeries(ws)
	if len(got) != 2 || got[0] != 0.1 || got[1] != 0.2 {
		t.Errorf("MemSeries = %v", got)
	}
}

func TestIPCxMEMGenerator(t *testing.T) {
	model := cpusim.New(cpusim.DefaultConfig())
	g, err := IPCxMEM(model, 0.5, 0.0225, 1.5e9, 100e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	ws := Collect(g, 0)
	if len(ws) != 10 {
		t.Fatalf("len = %d", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] != ws[0] {
			t.Fatal("IPCxMEM intervals differ")
		}
	}
	r, err := model.Execute(ws[0], 1.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.UPC-0.5) > 1e-9 || r.MemPerUop != 0.0225 {
		t.Errorf("IPCxMEM observed (%v, %v), want (0.5, 0.0225)", r.UPC, r.MemPerUop)
	}
	g.Reset()
	if again := Collect(g, 0); len(again) != 10 {
		t.Errorf("after Reset: %d intervals", len(again))
	}
	if _, err := IPCxMEM(model, 0.5, 0.01, 1.5e9, 100e6, 0); err == nil {
		t.Error("expected error for zero intervals")
	}
	if _, err := IPCxMEM(model, -1, 0.01, 1.5e9, 100e6, 5); err == nil {
		t.Error("expected error for bad target")
	}
}

func TestIPCxMEMGridShape(t *testing.T) {
	grid := IPCxMEMGrid()
	if len(grid) < 40 || len(grid) > 70 {
		t.Errorf("grid has %d points, want ~50", len(grid))
	}
	has := func(u, m float64) bool {
		for _, p := range grid {
			if p.UPC == u && p.MemPerUop == m {
				return true
			}
		}
		return false
	}
	if !has(1.9, 0) {
		t.Error("grid missing CPU-bound corner (1.9, 0)")
	}
	if !has(0.1, 0.0475) {
		t.Error("grid missing memory-bound corner (0.1, 0.0475)")
	}
	if !has(1.3, 0.0075) {
		t.Error("grid missing the paper's (1.3, 0.0075) legend point")
	}
	if has(1.9, 0.0475) {
		t.Error("grid contains point above the SPEC boundary")
	}
	for _, p := range grid {
		if p.UPC > SPECBoundary(p.MemPerUop)+1e-12 {
			t.Errorf("grid point (%v, %v) above boundary", p.UPC, p.MemPerUop)
		}
	}
}

func TestSPECBoundaryShape(t *testing.T) {
	if got := SPECBoundary(0); got != 2.0 {
		t.Errorf("SPECBoundary(0) = %v, want 2.0", got)
	}
	prev := math.Inf(1)
	for _, m := range []float64{0, 0.005, 0.01, 0.02, 0.03, 0.05, -1} {
		b := SPECBoundary(m)
		if b <= 0 {
			t.Errorf("SPECBoundary(%v) = %v", m, b)
		}
		if m >= 0 && b > prev {
			t.Errorf("boundary not decreasing at %v", m)
		}
		if m >= 0 {
			prev = b
		}
	}
	// Every Figure 7 legend point lies under the boundary.
	for _, p := range Figure7Points() {
		if p.UPC > SPECBoundary(p.MemPerUop)+1e-9 {
			t.Errorf("Figure 7 point (%v, %v) above boundary", p.UPC, p.MemPerUop)
		}
	}
}

func TestFigure7PointsAreOnGridLegend(t *testing.T) {
	pts := Figure7Points()
	if len(pts) != 11 {
		t.Fatalf("Figure7Points has %d entries, want 11", len(pts))
	}
	if pts[0] != (GridPoint{1.9, 0}) || pts[8] != (GridPoint{0.1, 0.0475}) {
		t.Errorf("unexpected legend entries: %+v", pts)
	}
}

func TestBenchmarkSets(t *testing.T) {
	if got := len(Figure12Set()); got != 8 {
		t.Errorf("Figure12Set has %d entries, want 8", got)
	}
	if got := len(Figure5Set()); got != 18 {
		t.Errorf("Figure5Set has %d entries, want 18", got)
	}
	vs := VariableSet()
	if got := len(vs); got != 6 {
		t.Errorf("VariableSet has %d entries, want 6", got)
	}
	if vs[len(vs)-1].Name != "equake_in" {
		t.Errorf("VariableSet order: %v", vs[len(vs)-1].Name)
	}
}

func TestRecipesStayInPhysicalRange(t *testing.T) {
	for _, p := range All() {
		ws := Collect(p.Generator(Params{Seed: 3, Intervals: 500}), 0)
		for i, w := range ws {
			if w.MemPerUop < 0 || w.MemPerUop > 0.25 {
				t.Fatalf("%s interval %d: mem/uop %v out of range", p.Name, i, w.MemPerUop)
			}
			if w.CoreUPC < 0.05 || w.CoreUPC > 3 {
				t.Fatalf("%s interval %d: core UPC %v out of range", p.Name, i, w.CoreUPC)
			}
		}
	}
}

func TestCustomGranularity(t *testing.T) {
	p, _ := ByName("swim_in")
	g := p.Generator(Params{Seed: 1, Intervals: 5, GranularityUops: 10e6})
	w, ok := g.Next()
	if !ok || w.Uops != 10e6 {
		t.Errorf("granularity override: %+v ok=%v", w, ok)
	}
}

func TestEveryProfileIsDocumented(t *testing.T) {
	for _, p := range All() {
		if len(p.Description) < 40 {
			t.Errorf("%s: description too thin (%d chars)", p.Name, len(p.Description))
		}
	}
}

func TestCalibrationRobustAcrossSeeds(t *testing.T) {
	// The headline calibration (applu's adjacent-equality, the
	// quadrant memberships) must not be an artifact of one seed.
	tab := phase.Default()
	applu, err := ByName("applu_in")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		works := Collect(applu.Generator(Params{Seed: seed, Intervals: 2000}), 0)
		same := 0
		prev := phase.None
		for i, w := range works {
			p := tab.Classify(phase.Sample{MemPerUop: w.MemPerUop})
			if i > 0 && p == prev {
				same++
			}
			prev = p
		}
		frac := float64(same) / float64(len(works)-1)
		if frac < 0.40 || frac > 0.55 {
			t.Errorf("seed %d: applu adjacent-equality %.2f outside calibration band", seed, frac)
		}
		mem := MemSeries(works)
		avg := stats.Mean(mem)
		vari := stats.Variation(mem, 0.005)
		if got := stats.Classify(avg, vari, stats.DefaultSavingsSplit, stats.DefaultVariationSplit); got != stats.Q3 {
			t.Errorf("seed %d: applu classified %v, want Q3", seed, got)
		}
	}
}

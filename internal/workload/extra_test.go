package workload

import (
	"testing"

	"phasemon/internal/cpusim"
	"phasemon/internal/memhier"
	"phasemon/internal/phase"
)

func TestReplay(t *testing.T) {
	works := []cpusim.Work{
		{Uops: 100e6, MemPerUop: 0.002, CoreUPC: 1.2},
		{Uops: 100e6, MemPerUop: 0.033, CoreUPC: 0.8},
	}
	g, err := Replay("trace", works)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "trace" {
		t.Errorf("Name = %q", g.Name())
	}
	got := Collect(g, 0)
	if len(got) != 2 || got[0] != works[0] || got[1] != works[1] {
		t.Fatalf("replay mismatch: %+v", got)
	}
	g.Reset()
	if again := Collect(g, 0); len(again) != 2 {
		t.Errorf("after Reset: %d intervals", len(again))
	}
	// The replayed slice is a copy: mutating the input later is safe.
	works[0].MemPerUop = 0.9
	g.Reset()
	w, _ := g.Next()
	if w.MemPerUop != 0.002 {
		t.Error("replay aliases caller slice")
	}
	if _, err := Replay("x", nil); err == nil {
		t.Error("empty replay accepted")
	}
	if _, err := Replay("x", []cpusim.Work{{}}); err == nil {
		t.Error("invalid work accepted")
	}
}

func TestInterleaveAlternatesQuanta(t *testing.T) {
	a, err := Replay("a", repeatWork(cpusim.Work{Uops: 1e6, MemPerUop: 0.001, CoreUPC: 1}, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay("b", repeatWork(cpusim.Work{Uops: 1e6, MemPerUop: 0.033, CoreUPC: 1}, 6))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Interleave(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "a+b" {
		t.Errorf("Name = %q", g.Name())
	}
	got := Collect(g, 0)
	if len(got) != 12 {
		t.Fatalf("%d intervals, want 12", len(got))
	}
	wantMem := []float64{0.001, 0.001, 0.033, 0.033, 0.001, 0.001, 0.033, 0.033, 0.001, 0.001, 0.033, 0.033}
	for i, w := range got {
		if w.MemPerUop != wantMem[i] {
			t.Fatalf("interval %d: mem %v, want %v", i, w.MemPerUop, wantMem[i])
		}
	}
}

func TestInterleaveDrainsLongerProgram(t *testing.T) {
	a, _ := Replay("a", repeatWork(cpusim.Work{Uops: 1e6, MemPerUop: 0.001, CoreUPC: 1}, 2))
	b, _ := Replay("b", repeatWork(cpusim.Work{Uops: 1e6, MemPerUop: 0.033, CoreUPC: 1}, 8))
	g, err := Interleave(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(g, 0)
	if len(got) != 10 {
		t.Fatalf("%d intervals, want 10 (2 + 8)", len(got))
	}
	// After a finishes, only b's intervals remain.
	for _, w := range got[len(got)-6:] {
		if w.MemPerUop != 0.033 {
			t.Fatalf("tail interval from wrong program: %v", w.MemPerUop)
		}
	}
	g.Reset()
	if again := Collect(g, 0); len(again) != 10 {
		t.Errorf("after Reset: %d", len(again))
	}
}

func TestInterleaveValidation(t *testing.T) {
	a, _ := Replay("a", repeatWork(cpusim.Work{Uops: 1e6, CoreUPC: 1}, 1))
	if _, err := Interleave(nil, a, 1); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := Interleave(a, a, 0); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestInterleavePreservesPhaseStreams(t *testing.T) {
	// Interleaving two stable programs produces a square-wave phase
	// stream with the quantum as the period — predictable by the GPHT,
	// demonstrating robustness to multiprogramming.
	pa, err := ByName("crafty_in")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ByName("swim_in")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Interleave(
		pa.Generator(Params{Seed: 1, Intervals: 300}),
		pb.Generator(Params{Seed: 1, Intervals: 300}),
		5,
	)
	if err != nil {
		t.Fatal(err)
	}
	tab := phase.Default()
	works := Collect(g, 0)
	if len(works) != 600 {
		t.Fatalf("%d intervals", len(works))
	}
	// Count quantum-aligned phase switches.
	switches := 0
	for i := 1; i < len(works); i++ {
		a := tab.Classify(phase.Sample{MemPerUop: works[i-1].MemPerUop})
		b := tab.Classify(phase.Sample{MemPerUop: works[i].MemPerUop})
		if a != b {
			switches++
			if i%5 != 0 {
				t.Fatalf("phase switch off quantum boundary at %d", i)
			}
		}
	}
	if switches < 100 {
		t.Errorf("only %d phase switches; interleave not alternating", switches)
	}
}

func repeatWork(w cpusim.Work, n int) []cpusim.Work {
	out := make([]cpusim.Work, n)
	for i := range out {
		out[i] = w
	}
	return out
}

func TestFromLocality(t *testing.T) {
	hier := memhier.Default()
	sections := []LocalityPhase{
		{Profile: memhier.AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 16 << 10}, Intervals: 4, CoreUPC: 1.5},
		{Profile: memhier.AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 64 << 20}, Intervals: 2, CoreUPC: 0.8},
	}
	g, err := FromLocality("ws_program", hier, sections, 100e6, 12)
	if err != nil {
		t.Fatal(err)
	}
	works := Collect(g, 0)
	if len(works) != 12 {
		t.Fatalf("%d intervals", len(works))
	}
	tab := phase.Default()
	// Sections repeat 4+2: intervals 0-3 cache-resident (phase 1),
	// 4-5 memory-streaming (high phase), then again.
	for i, w := range works {
		p := tab.Classify(phase.Sample{MemPerUop: w.MemPerUop})
		inHot := i%6 >= 4
		if inHot && p < 5 {
			t.Fatalf("interval %d: expected memory-bound phase, got %v (mem %v)", i, p, w.MemPerUop)
		}
		if !inHot && p != 1 {
			t.Fatalf("interval %d: expected phase 1, got %v (mem %v)", i, p, w.MemPerUop)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("interval %d invalid: %v", i, err)
		}
	}
	g.Reset()
	if again := Collect(g, 0); len(again) != 12 {
		t.Errorf("after Reset: %d", len(again))
	}
}

func TestFromLocalityValidation(t *testing.T) {
	hier := memhier.Default()
	ok := []LocalityPhase{{Profile: memhier.AccessProfile{AccessesPerUop: 0.3, WorkingSetBytes: 1 << 20}, Intervals: 1, CoreUPC: 1}}
	if _, err := FromLocality("x", nil, ok, 0, 10); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := FromLocality("x", hier, nil, 0, 10); err == nil {
		t.Error("no sections accepted")
	}
	if _, err := FromLocality("x", hier, ok, 0, 0); err == nil {
		t.Error("zero total accepted")
	}
	bad := []LocalityPhase{{Profile: memhier.AccessProfile{AccessesPerUop: -1}, Intervals: 1, CoreUPC: 1}}
	if _, err := FromLocality("x", hier, bad, 0, 10); err == nil {
		t.Error("invalid profile accepted")
	}
	noCount := []LocalityPhase{{Profile: memhier.AccessProfile{AccessesPerUop: 0.3}, Intervals: 0, CoreUPC: 1}}
	if _, err := FromLocality("x", hier, noCount, 0, 10); err == nil {
		t.Error("zero-interval section accepted")
	}
	noUPC := []LocalityPhase{{Profile: memhier.AccessProfile{AccessesPerUop: 0.3}, Intervals: 1}}
	if _, err := FromLocality("x", hier, noUPC, 0, 10); err == nil {
		t.Error("zero core UPC accepted")
	}
}

func TestConcatRunsJobsBackToBack(t *testing.T) {
	a, _ := Replay("a", repeatWork(cpusim.Work{Uops: 1e6, MemPerUop: 0.001, CoreUPC: 1}, 3))
	b, _ := Replay("b", repeatWork(cpusim.Work{Uops: 1e6, MemPerUop: 0.033, CoreUPC: 1}, 2))
	g, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "a;b" {
		t.Errorf("Name = %q", g.Name())
	}
	got := Collect(g, 0)
	if len(got) != 5 {
		t.Fatalf("%d intervals, want 5", len(got))
	}
	for i, w := range got {
		want := 0.001
		if i >= 3 {
			want = 0.033
		}
		if w.MemPerUop != want {
			t.Fatalf("interval %d from wrong job", i)
		}
	}
	g.Reset()
	if again := Collect(g, 0); len(again) != 5 {
		t.Errorf("after Reset: %d", len(again))
	}
	if _, err := Concat(); err == nil {
		t.Error("empty Concat accepted")
	}
	if _, err := Concat(a, nil); err == nil {
		t.Error("nil generator accepted")
	}
}

package workload

import (
	"fmt"
	"sort"

	"phasemon/internal/stats"
)

// Profile describes one of the paper's SPEC CPU2000 benchmark/input
// pairs as a synthetic workload specification.
type Profile struct {
	// Name is the paper's benchmark_input label (e.g. "applu_in").
	Name string
	// Quadrant is the paper's Figure 3 categorization.
	Quadrant stats.Quadrant
	// DefaultIntervals is the benchmark's run length in sampling
	// intervals (100M uops each by default), standing in for the
	// benchmark's full execution.
	DefaultIntervals int
	// CoreUPCMax is the compute-side UPC the benchmark sustains in its
	// least memory-bound regions.
	CoreUPCMax float64
	// MLP is the benchmark's effective memory-level parallelism
	// (values below 1 model serialized, queue-bound access streams).
	MLP float64
	// UopsPerInstr is the uop expansion ratio of the benchmark's
	// instruction mix.
	UopsPerInstr float64
	// Description documents what program behavior the synthetic recipe
	// stands in for and which calibration targets it was tuned to.
	Description string
	// recipe builds the benchmark's Mem/Uop behavior over time.
	recipe recipe
}

// Phase-representative Mem/Uop levels used by the synthetic motifs,
// chosen inside the paper's Table 1 bins.
const (
	memP1 = 0.0030 // phase 1: < 0.005
	memP2 = 0.0075 // phase 2: [0.005, 0.010)
	memP3 = 0.0125 // phase 3: [0.010, 0.015)
	memP4 = 0.0180 // phase 4: [0.015, 0.020)
	memP5 = 0.0240 // phase 5: [0.020, 0.030)
	memP6 = 0.0330 // phase 6: > 0.030
)

// profiles is the registry, in the paper's Figure 4 order (decreasing
// last-value prediction accuracy).
var profiles = []*Profile{
	// --- Very stable, CPU-bound Q1 applications. ---
	{
		Name: "crafty_in", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.8, MLP: 1.5, UopsPerInstr: 1.12,
		Description: "Chess search: tight compute loops over in-cache board state. Flat phase 1; every predictor is near-perfect.",
		recipe:      steady(0.0008, 0.0002),
	},
	{
		Name: "eon_cook", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.7, MLP: 1.5, UopsPerInstr: 1.20,
		Description: "Ray tracer (cook view): arithmetic-dense shading with tiny footprints. The most CPU-bound profile of the suite.",
		recipe:      steady(0.0003, 0.0001),
	},
	{
		Name: "eon_kajiya", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.7, MLP: 1.5, UopsPerInstr: 1.20,
		Description: "Ray tracer (kajiya view): as eon_cook with marginally more scene traffic.",
		recipe:      steady(0.0004, 0.0001),
	},
	{
		Name: "eon_rushmeier", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.7, MLP: 1.5, UopsPerInstr: 1.20,
		Description: "Ray tracer (rushmeier view): as eon_cook with the largest of eon's still-negligible memory rates.",
		recipe:      steady(0.0006, 0.0002),
	},
	{
		Name: "mesa_ref", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.6, MLP: 1.5, UopsPerInstr: 1.15,
		Description: "Software OpenGL rasterizer: steady pixel pipeline, small constant memory rate.",
		recipe:      steady(0.0015, 0.0003),
	},
	{
		Name: "vortex_lendian2", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.3, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Object database, workload 2: steady lookups with rare multi-interval commit bursts (aperiodic, unlearnable).",
		recipe:      bursts(0.0025, 0.0062, 70, 2, 0.0004),
	},
	{
		Name: "sixtrack_in", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.9, MLP: 1.5, UopsPerInstr: 1.25,
		Description: "Particle tracking: vectorizable arithmetic, essentially no bus traffic.",
		recipe:      steady(0.0005, 0.0001),
	},
	{
		// swim: flat but strongly memory-bound — the paper's canonical
		// "trivial" Q2 benchmark with >60% EDP improvement.
		Name: "swim_in", Quadrant: stats.Q2, DefaultIntervals: 3000,
		CoreUPCMax: 1.0, MLP: 0.4, UopsPerInstr: 1.05,
		Description: "Shallow-water stencil: flat, strongly memory-bound streaming (phase 5). The paper's trivial Q2 case with >60% EDP gains.",
		recipe:      steady(0.0255, 0.0008),
	},
	{
		Name: "vortex_lendian1", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.3, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Object database, workload 1: as lendian2 with a different commit cadence.",
		recipe:      bursts(0.0022, 0.0065, 55, 2, 0.0004),
	},
	{
		Name: "twolf_ref", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.0, MLP: 1.3, UopsPerInstr: 1.10,
		Description: "Place-and-route annealing: mostly in-cache with irregular net-rip-up excursions crossing the phase 1/2 boundary.",
		recipe:      bursts(0.0035, 0.0095, 26, 2, 0.0004),
	},
	{
		Name: "vortex_lendian3", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.3, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Object database, workload 3: the burstiest of the vortex inputs.",
		recipe:      bursts(0.0025, 0.0068, 45, 2, 0.0004),
	},
	// --- gzip: long steady stretches with short dictionary-reset
	// excursions; the excursion cadence differs per input. ---
	{
		Name: "gzip_program", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.2, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Deflate over program binaries: long in-cache stretches with two-interval dictionary-reset excursions every ~28 intervals.",
		recipe:      cycle(gzipMotif(28), 0.0004, 0.01),
	},
	{
		Name: "gzip_graphic", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.2, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Deflate over image data: slightly denser reset cadence than gzip_program.",
		recipe:      cycle(gzipMotif(26), 0.0004, 0.01),
	},
	{
		Name: "gzip_random", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.2, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Deflate over incompressible data: resets arrive faster (less useful dictionary).",
		recipe:      cycle(gzipMotif(24), 0.0004, 0.012),
	},
	{
		Name: "gzip_source", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.2, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Deflate over source text: reset cadence between program and log inputs.",
		recipe:      cycle(gzipMotif(22), 0.0004, 0.012),
	},
	{
		Name: "gzip_log", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.2, MLP: 1.5, UopsPerInstr: 1.10,
		Description: "Deflate over log text: the shortest stretch length of the gzip family.",
		recipe:      cycle(gzipMotif(20), 0.0004, 0.015),
	},
	{
		// mcf: extremely memory-bound with a short recurring phase dip —
		// Q2 with the largest power-savings potential of the suite.
		Name: "mcf_inp", Quadrant: stats.Q2, DefaultIntervals: 3000,
		CoreUPCMax: 0.6, MLP: 0.45, UopsPerInstr: 1.05,
		Description: "Network simplex on sparse graphs: pointer chasing with the suite's highest memory-boundedness (phase 6 plateau) and a short recurring pivot dip. Q2: massive savings, little variability.",
		recipe:      cycle(mcfMotif(), 0.0010, 0.005),
	},
	// --- gcc-style irregular drifters. ---
	{
		Name: "gcc_200", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.4, UopsPerInstr: 1.15,
		Description: "Compiler on the 200.i input: per-function optimization passes appear as fixed two-interval memory excursions at memoryless arrivals.",
		recipe:      burstsFixed(0.0025, 0.0075, 16, 2, 0.0004),
	},
	{
		Name: "gcc_scilab", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.4, UopsPerInstr: 1.15,
		Description: "Compiler on scilab.i: denser function cadence than 200.i.",
		recipe:      burstsFixed(0.0028, 0.0078, 13, 2, 0.0004),
	},
	{
		Name: "wupwise_ref", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.3, MLP: 1.6, UopsPerInstr: 1.18,
		Description: "Lattice QCD solver: slow square-wave alternation between compute sweeps and boundary exchanges. Dwell exceeds the GPHR depth, so GPHT ties last-value here.",
		recipe:      square(0.0040, 0.0075, 12, 4, 0.0004),
	},
	{
		Name: "gap_ref", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.0, MLP: 1.4, UopsPerInstr: 1.10,
		Description: "Group-theory interpreter: a steady level sitting close under the phase 1/2 boundary; classification jitter that no history can learn.",
		recipe:      steady(0.0040, 0.0008),
	},
	{
		Name: "gcc_integrate", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.4, UopsPerInstr: 1.15,
		Description: "Compiler on integrate.i: faster function cadence, slightly hotter baseline.",
		recipe:      burstsFixed(0.0030, 0.0080, 11, 2, 0.0005),
	},
	{
		Name: "gcc_expr", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.4, UopsPerInstr: 1.15,
		Description: "Compiler on expr.i: near gcc_integrate with a higher excursion level.",
		recipe:      burstsFixed(0.0030, 0.0085, 10, 2, 0.0005),
	},
	{
		Name: "ammp_in", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 0.9, MLP: 1.3, UopsPerInstr: 1.08,
		Description: "Molecular dynamics: neighbor-list rebuilds alternate with force computation in a clean 10/5 square wave below the variation threshold.",
		recipe:      square(0.0040, 0.0085, 10, 5, 0.0004),
	},
	{
		Name: "gcc_166", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.4, UopsPerInstr: 1.15,
		Description: "Compiler on 166.i: the densest gcc cadence of the suite.",
		recipe:      burstsFixed(0.0032, 0.0090, 10, 2, 0.0005),
	},
	{
		Name: "parser_ref", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.0, MLP: 1.3, UopsPerInstr: 1.10,
		Description: "Link-grammar parser: dictionary lookups as fixed-length bursts over a phase-1 baseline.",
		recipe:      burstsFixed(0.0038, 0.0092, 14, 2, 0.0005),
	},
	{
		Name: "apsi_ref", Quadrant: stats.Q1, DefaultIntervals: 3000,
		CoreUPCMax: 1.2, MLP: 1.6, UopsPerInstr: 1.15,
		Description: "Mesoscale weather code: 9/6 solver-sweep square wave across the phase 1/2 boundary; real savings potential despite Q1 stability.",
		recipe:      square(0.0040, 0.0095, 9, 6, 0.0005),
	},
	// --- The paper's six variable benchmarks (Q3/Q4): statistical
	// predictors collapse here, the GPHT does not. ---
	{
		Name: "bzip2_program", Quadrant: stats.Q4, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.0, UopsPerInstr: 1.10,
		Description: "Burrows-Wheeler compress on binaries: compress -> Huffman -> sort sections cycling every 13 intervals with disturbances. Q4: variable, modest savings.",
		recipe:      cycle(bzip2Motif(6, 3, 2, 2), 0.0005, 0.02),
	},
	{
		Name: "mgrid_in", Quadrant: stats.Q3, DefaultIntervals: 3000,
		CoreUPCMax: 0.9, MLP: 0.8, UopsPerInstr: 1.12,
		Description: "Multigrid V-cycles: a staircase through phases 2-4 plus smoother plateaus; Q3 with high power savings and muted EDP (paper's mgrid caveat).",
		recipe: pieces(
			piece{60, cycle(mgridMotif(), 0.0004, 0.02)},
			piece{18, steady(0.0090, 0.0005)},
		),
	},
	{
		Name: "bzip2_source", Quadrant: stats.Q4, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.0, UopsPerInstr: 1.10,
		Description: "Burrows-Wheeler compress on source text: shorter sections than bzip2_program.",
		recipe:      cycle(bzip2Motif(5, 3, 2, 2), 0.0005, 0.022),
	},
	{
		Name: "bzip2_graphic", Quadrant: stats.Q4, DefaultIntervals: 3000,
		CoreUPCMax: 1.1, MLP: 1.0, UopsPerInstr: 1.10,
		Description: "Burrows-Wheeler compress on image data: shortest sections, most disturbed of the bzip2 family.",
		recipe:      cycle(bzip2Motif(4, 3, 2, 2), 0.0006, 0.025),
	},
	{
		// applu: the paper's running example — rapid recurrent phase
		// alternation that defeats last-value prediction (>53%
		// mispredictions) but not the GPHT (<8%).
		Name: "applu_in", Quadrant: stats.Q3, DefaultIntervals: 3000,
		CoreUPCMax: 1.0, MLP: 0.6, UopsPerInstr: 1.10,
		Description: "SSOR CFD solver: the paper's running example. 68-interval 2/5/6 motif, ~46% adjacent-equal: last-value fails >53% while the GPHT learns it (<8% mispredictions, >6X reduction).",
		recipe:      cycle(appluMotif(), 0.0006, 0.015),
	},
	{
		Name: "equake_in", Quadrant: stats.Q3, DefaultIntervals: 3000,
		CoreUPCMax: 1.0, MLP: 0.7, UopsPerInstr: 1.08,
		Description: "Earthquake FEM: 76-interval 2/4/5 motif with the suite's lowest adjacent-equality (~36%) - the worst case for statistical predictors, peak EDP benefit from prediction.",
		recipe:      cycle(equakeMotif(), 0.0006, 0.017),
	},
}

// gzipMotif is a compression loop: a long phase-1 stretch of the given
// length followed by a two-interval memory excursion.
func gzipMotif(stretch int) []float64 {
	m := make([]float64, 0, stretch+2)
	for i := 0; i < stretch; i++ {
		m = append(m, memP1)
	}
	return append(m, 0.0070, 0.0070)
}

// mcfMotif is a long phase-6 plateau with a short recurring dip —
// rare enough that mcf stays on the stable side of the Figure 3
// variability split.
func mcfMotif() []float64 {
	m := make([]float64, 0, 46)
	for i := 0; i < 44; i++ {
		m = append(m, 0.110)
	}
	return append(m, 0.050, 0.028)
}

// bzip2Motif alternates compress (phase 1), Huffman (phase 2) and
// sort-heavy (phase 4) sections with the given dwell lengths. The
// levels sit far enough apart that every section change registers as
// sample variation, keeping bzip2 on the variable (Q4) side of
// Figure 3.
func bzip2Motif(a, b, c, d int) []float64 {
	var m []float64
	appendN := func(v float64, n int) {
		for i := 0; i < n; i++ {
			m = append(m, v)
		}
	}
	appendN(0.0035, a)
	appendN(0.0095, b)
	appendN(0.0155, c)
	appendN(0.0035, d)
	return m
}

// mgridMotif is a multigrid V-cycle staircase.
func mgridMotif() []float64 {
	return []float64{
		memP2, memP2, memP2,
		0.0130, 0.0130,
		0.0185, 0.0185,
		0.0130, 0.0130,
		memP2,
	}
}

// memOf maps small phase numbers to representative Mem/Uop levels.
func memOf(ph []int) []float64 {
	m := make([]float64, len(ph))
	for i, p := range ph {
		switch p {
		case 1:
			m[i] = memP1
		case 2:
			m[i] = memP2
		case 3:
			m[i] = memP3
		case 4:
			m[i] = memP4
		case 5:
			m[i] = memP5
		default:
			m[i] = memP6
		}
	}
	return m
}

// appluMotif is the rapid 2/5/6 alternation of the paper's Figure 2:
// ~46% adjacent-equal phases (so last-value prediction fails more than
// half the time) arranged in a 68-interval repeating pattern whose 68
// distinct 8-deep contexts exceed a 64-entry PHT but fit comfortably
// in 128 — the structure behind Figure 5's capacity cliff. Every
// 8-context has a unique successor, so a large-enough GPHT learns the
// pattern exactly; only the disturbance rate caps its accuracy.
func appluMotif() []float64 {
	return memOf([]int{
		5, 5, 2, 2, 6, 2, 2, 5, 6, 6, 2, 2, 6, 6, 5, 5, 2,
		2, 6, 6, 5, 5, 2, 5, 5, 6, 6, 2, 2, 6, 6, 2, 2, 5,
		5, 2, 2, 6, 6, 5, 2, 2, 6, 5, 5, 6, 5, 2, 2, 6, 6,
		2, 2, 6, 2, 2, 5, 5, 6, 6, 2, 2, 5, 5, 6, 6, 5, 5,
	})
}

// equakeMotif mixes phases 2, 4 and 5 with only ~36% adjacent-equal
// pairs — the worst case for statistical predictors in Figure 4 — in a
// 76-interval pattern with 76 distinct 8-deep contexts.
func equakeMotif() []float64 {
	return memOf([]int{
		2, 4, 2, 4, 4, 2, 2, 5, 2, 2, 5, 5, 4, 4, 5, 5, 4, 2, 2,
		5, 4, 4, 5, 4, 4, 5, 4, 4, 5, 5, 4, 4, 5, 5, 2, 2, 4, 2,
		2, 4, 4, 2, 2, 5, 2, 5, 2, 2, 5, 5, 2, 5, 2, 2, 5, 4, 4,
		5, 5, 4, 5, 5, 2, 5, 5, 4, 5, 5, 2, 2, 4, 5, 4, 5, 5, 4,
	})
}

// All returns every benchmark profile in the paper's Figure 4 order.
// The returned slice is fresh but shares the profile structs; callers
// must not mutate them.
func All() []*Profile {
	out := make([]*Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ByName looks up a profile.
func ByName(name string) (*Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q (run `phasemon -list` for choices)", name)
}

// Names returns all benchmark names, sorted alphabetically.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// Figure12Set returns the paper's Figure 12 benchmark list: the
// variable Q3/Q4 applications plus the high-savings Q2 pair.
func Figure12Set() []*Profile {
	return mustSet(
		"bzip2_program", "bzip2_source", "bzip2_graphic", "mgrid_in",
		"applu_in", "equake_in", "swim_in", "mcf_inp",
	)
}

// Figure5Set returns the 18 least-stable benchmarks whose GPHT
// size-sensitivity the paper's Figure 5 plots.
func Figure5Set() []*Profile {
	return mustSet(
		"gzip_log", "mcf_inp", "gcc_200", "gcc_scilab", "wupwise_ref",
		"gap_ref", "gcc_integrate", "gcc_expr", "ammp_in", "gcc_166",
		"parser_ref", "apsi_ref", "bzip2_program", "mgrid_in",
		"bzip2_source", "bzip2_graphic", "applu_in", "equake_in",
	)
}

// VariableSet returns the paper's "last 6" benchmarks: the Q3/Q4
// applications where pattern-based prediction pays off.
func VariableSet() []*Profile {
	return mustSet(
		"bzip2_program", "mgrid_in", "bzip2_source", "bzip2_graphic",
		"applu_in", "equake_in",
	)
}

func mustSet(names ...string) []*Profile {
	out := make([]*Profile, len(names))
	for i, n := range names {
		p, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = p
	}
	return out
}

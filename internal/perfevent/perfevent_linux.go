//go:build linux && (amd64 || arm64)

package perfevent

import (
	"encoding/binary"
	"fmt"
	"syscall"
	"time"
	"unsafe"
)

// perf_event_attr, PERF_ATTR_SIZE_VER5 layout (112 bytes).
type perfEventAttr struct {
	typ            uint32
	size           uint32
	config         uint64
	samplePeriod   uint64
	sampleType     uint64
	readFormat     uint64
	flags          uint64
	wakeup         uint32
	bpType         uint32
	bpAddr         uint64
	bpLen          uint64
	branchSample   uint64
	sampleRegsUser uint64
	sampleStackUsr uint32
	clockID        int32
	sampleRegsIntr uint64
	auxWatermark   uint32
	sampleMaxStack uint16
	_              uint16
}

const (
	perfTypeHardware = 0

	perfCountHWInstructions = 1
	perfCountHWCacheMisses  = 3

	// readFormat: scale for counter multiplexing.
	readFormatTotalTimeEnabled = 1 << 0
	readFormatTotalTimeRunning = 1 << 1

	// attr flags.
	flagExcludeKernel = 1 << 5
	flagExcludeHV     = 1 << 6

	attrSizeVer5 = 112
)

type counter struct {
	fd int
}

func openCounter(pid int, config uint64) (*counter, error) {
	attr := perfEventAttr{
		typ:        perfTypeHardware,
		size:       attrSizeVer5,
		config:     config,
		readFormat: readFormatTotalTimeEnabled | readFormatTotalTimeRunning,
		flags:      flagExcludeKernel | flagExcludeHV,
	}
	fd, _, errno := syscall.Syscall6(
		syscall.SYS_PERF_EVENT_OPEN,
		uintptr(unsafe.Pointer(&attr)),
		uintptr(pid),
		^uintptr(0), // cpu = -1: any CPU
		^uintptr(0), // group_fd = -1: no group
		0,           // flags
		0,
	)
	if errno != 0 {
		return nil, fmt.Errorf("%w: perf_event_open(config=%d): %v", ErrUnsupported, config, errno)
	}
	syscall.CloseOnExec(int(fd))
	return &counter{fd: int(fd)}, nil
}

// read returns the counter value, scaled for time multiplexed with
// other perf users.
func (c *counter) read() (uint64, error) {
	var buf [24]byte
	n, err := syscall.Read(c.fd, buf[:])
	if err != nil {
		return 0, fmt.Errorf("perfevent: reading counter: %w", err)
	}
	if n < 24 {
		return 0, fmt.Errorf("perfevent: short counter read (%d bytes)", n)
	}
	value := binary.LittleEndian.Uint64(buf[0:8])
	enabled := binary.LittleEndian.Uint64(buf[8:16])
	running := binary.LittleEndian.Uint64(buf[16:24])
	if running > 0 && running < enabled {
		value = uint64(float64(value) * float64(enabled) / float64(running))
	}
	return value, nil
}

func (c *counter) close() error { return syscall.Close(c.fd) }

type linuxGroup struct {
	instr  *counter
	misses *counter
}

func openImpl(pid int) (groupImpl, error) {
	instr, err := openCounter(pid, perfCountHWInstructions)
	if err != nil {
		return nil, err
	}
	misses, err := openCounter(pid, perfCountHWCacheMisses)
	if err != nil {
		instr.close()
		return nil, err
	}
	return &linuxGroup{instr: instr, misses: misses}, nil
}

func (g *linuxGroup) read() (Counts, error) {
	i, err := g.instr.read()
	if err != nil {
		return Counts{}, err
	}
	m, err := g.misses.read()
	if err != nil {
		return Counts{}, err
	}
	return Counts{Instructions: i, CacheMisses: m, Time: time.Now()}, nil
}

func (g *linuxGroup) close() error {
	err1 := g.instr.close()
	err2 := g.misses.close()
	if err1 != nil {
		return err1
	}
	return err2
}

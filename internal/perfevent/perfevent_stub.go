//go:build !linux || (!amd64 && !arm64)

package perfevent

// openImpl reports hardware counters as unavailable on platforms
// without a perf_event_open backend.
func openImpl(pid int) (groupImpl, error) {
	return nil, ErrUnsupported
}

// Package perfevent bridges the framework to real hardware
// performance counters on Linux through the perf_event_open(2) system
// call — the modern equivalent of the paper's direct PMC programming.
//
// The paper's Pentium-M implementation counts UOPS_RETIRED and
// BUS_TRAN_MEM; portable perf events expose the closest generic pair:
// retired instructions and last-level cache misses, so the live phase
// metric becomes LLC-misses per instruction — the same
// memory-boundedness measure modulo the uop expansion factor. The
// package samples counter deltas at a fixed wall-clock period
// (interrupt-free; the paper's fixed-instruction PMI pacing needs
// overflow signal routing that is out of scope for a library) and
// feeds phase.Samples to the monitoring core.
//
// Availability is environment-dependent: unprivileged perf access is
// governed by /proc/sys/kernel/perf_event_paranoid and may be blocked
// entirely (containers, seccomp). Callers should treat Available()
// failure as a normal condition and fall back to the simulated
// platform; all tests skip gracefully.
package perfevent

import (
	"errors"
	"fmt"
	"time"

	"phasemon/internal/phase"
)

// Counts is one reading of the counter pair, scaled for multiplexing.
type Counts struct {
	// Instructions is the retired instruction count.
	Instructions uint64
	// CacheMisses is the last-level cache miss count — the bus
	// transaction proxy.
	CacheMisses uint64
	// Time is when the reading was taken.
	Time time.Time
}

// Sample derives the phase metric from a pair of readings.
func deriveSample(prev, cur Counts) phase.Sample {
	di := float64(cur.Instructions - prev.Instructions)
	dm := float64(cur.CacheMisses - prev.CacheMisses)
	if di <= 0 {
		return phase.Sample{}
	}
	return phase.Sample{MemPerUop: dm / di}
}

// ErrUnsupported reports that hardware counters are unavailable on
// this platform or in this environment.
var ErrUnsupported = errors.New("perfevent: hardware counters unavailable")

// Group owns the counter pair for one process.
type Group struct {
	impl groupImpl
}

// groupImpl is the platform backend.
type groupImpl interface {
	read() (Counts, error)
	close() error
}

// Available reports whether hardware counters can be opened in this
// environment; the returned error explains why not.
func Available() error {
	g, err := Open(0)
	if err != nil {
		return err
	}
	return g.Close()
}

// Open attaches counters to a process (0 = the calling thread).
func Open(pid int) (*Group, error) {
	impl, err := openImpl(pid)
	if err != nil {
		return nil, err
	}
	return &Group{impl: impl}, nil
}

// Read returns the current counter values.
func (g *Group) Read() (Counts, error) { return g.impl.read() }

// Close releases the counters.
func (g *Group) Close() error { return g.impl.close() }

// Samples reads the counters every period and delivers one
// phase.Sample per elapsed interval on the returned channel until the
// stop channel closes. Errors end the stream.
func (g *Group) Samples(stop <-chan struct{}, period time.Duration) (<-chan phase.Sample, error) {
	if period <= 0 {
		return nil, fmt.Errorf("perfevent: period %v must be positive", period)
	}
	out := make(chan phase.Sample)
	prev, err := g.Read()
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(out)
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				cur, err := g.Read()
				if err != nil {
					return
				}
				s := deriveSample(prev, cur)
				prev = cur
				select {
				case out <- s:
				case <-stop:
					return
				}
			}
		}
	}()
	return out, nil
}

package perfevent

import (
	"testing"
	"time"

	"phasemon/internal/core"
	"phasemon/internal/phase"
)

// burn does enough work that retired-instruction counters must move.
func burn() int {
	s := 0
	for i := 0; i < 5_000_000; i++ {
		s += i * i
	}
	return s
}

func requireCounters(t *testing.T) {
	t.Helper()
	if err := Available(); err != nil {
		t.Skipf("hardware counters unavailable here (normal in containers): %v", err)
	}
}

func TestAvailableReportsCoherently(t *testing.T) {
	// Either Available works and Open must too, or both fail the same
	// way — no half-open states.
	err := Available()
	g, openErr := Open(0)
	if (err == nil) != (openErr == nil) {
		t.Fatalf("Available()=%v but Open()=%v", err, openErr)
	}
	if g != nil {
		g.Close()
	}
}

func TestCountersAdvanceUnderLoad(t *testing.T) {
	requireCounters(t)
	g, err := Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	before, err := g.Read()
	if err != nil {
		t.Fatal(err)
	}
	if burn() < 0 {
		t.Fatal("unreachable")
	}
	after, err := g.Read()
	if err != nil {
		t.Fatal(err)
	}
	if after.Instructions <= before.Instructions {
		t.Errorf("instructions did not advance: %d -> %d", before.Instructions, after.Instructions)
	}
	if after.Time.Before(before.Time) {
		t.Error("time went backwards")
	}
}

func TestSamplesFeedMonitor(t *testing.T) {
	requireCounters(t)
	g, err := Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	stop := make(chan struct{})
	samples, err := g.Samples(stop, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.NewMonitor(phase.Default(), core.NewLastValue())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			burn()
		}
		close(stop)
	}()
	n := 0
	for s := range samples {
		actual, next := mon.Step(s)
		if !actual.Valid(6) || !next.Valid(6) {
			t.Fatalf("invalid live classification %v/%v for sample %+v", actual, next, s)
		}
		n++
	}
	<-done
	if n == 0 {
		t.Error("no live samples produced")
	}
}

func TestSamplesValidation(t *testing.T) {
	requireCounters(t)
	g, err := Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Samples(make(chan struct{}), 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestDeriveSample(t *testing.T) {
	prev := Counts{Instructions: 1000, CacheMisses: 10}
	cur := Counts{Instructions: 2000, CacheMisses: 40}
	s := deriveSample(prev, cur)
	if s.MemPerUop != 0.03 {
		t.Errorf("MemPerUop = %v, want 0.03", s.MemPerUop)
	}
	// Stalled interval (no instructions) degrades to a zero sample
	// instead of dividing by zero.
	if got := deriveSample(prev, prev); got.MemPerUop != 0 {
		t.Errorf("zero-delta sample = %+v", got)
	}
}

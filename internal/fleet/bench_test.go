package fleet

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkFleetSweep measures sweep throughput at several pool sizes
// over a fixed 16-run sweep (one workload, 16 distinct seeds, equal
// per-run work). The cache is disabled so every iteration executes
// every run; on a multi-core machine the workers=8 case should
// approach an 8x speedup over workers=1, since runs share no state.
//
// Run with:
//
//	go test -bench FleetSweep -benchtime 3x ./internal/fleet
func BenchmarkFleetSweep(b *testing.B) {
	const runs = 16
	specs := make([]Spec, runs)
	for i := range specs {
		specs[i] = Spec{
			Workload:  "applu_in",
			Policy:    "gpht_8_128",
			Intervals: 200,
			Seed:      int64(i + 1),
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Config{Workers: workers, DisableCache: true})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := e.RunAll(context.Background(), specs)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != runs {
					b.Fatalf("%d results, want %d", len(results), runs)
				}
			}
		})
	}
}

// BenchmarkFleetCacheHit measures the repeat-sweep path: every spec is
// served from the engine's cache.
func BenchmarkFleetCacheHit(b *testing.B) {
	specs := []Spec{
		{Workload: "applu_in", Policy: "gpht_8_128", Intervals: 200},
		{Workload: "applu_in", Policy: "baseline", Intervals: 200},
	}
	e := New(Config{Workers: 2})
	if _, err := e.RunAll(context.Background(), specs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := e.RunAll(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
		if results[0].Status != StatusCached {
			b.Fatal("expected cache hit")
		}
	}
}

// Package fleet is the concurrent run engine behind the repo's sweeps:
// it shards governed-run specs across a bounded worker pool and
// streams typed results back, while guaranteeing that the numbers are
// bit-identical to a serial execution.
//
// The determinism contract has three legs:
//
//   - per-spec seeding: every spec resolves its own generator seed
//     (Spec.EffectiveSeed) before any worker touches it, so no run's
//     input depends on scheduling;
//   - fresh state per run: policies rebuild their predictor for every
//     run, so no predictor state leaks between concurrent runs;
//   - indexed delivery: results carry the spec's submission index, so
//     aggregation orders by index, not by completion.
//
// On top sit the operational concerns a long sweep needs: context
// cancellation and per-run timeouts (through governor.RunContext), a
// content-keyed result cache with single-flight de-duplication of
// concurrent identical specs, and live telemetry through the same
// *telemetry.Hub the rest of the pipeline reports to.
package fleet

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phasemon/internal/cpusim"
	"phasemon/internal/dvfs"
	"phasemon/internal/governor"
	"phasemon/internal/machine"
	"phasemon/internal/phase"
	"phasemon/internal/telemetry"
	"phasemon/internal/wcache"
	"phasemon/internal/workload"
)

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds run concurrency; values below 1 select
	// runtime.GOMAXPROCS(0). The worker count never affects results,
	// only wall time.
	Workers int
	// Timeout, when positive, bounds each individual run's wall time; a
	// run that exceeds it fails with StatusCanceled.
	Timeout time.Duration
	// BaseSeed seeds specs that carry no seed of their own (see
	// Spec.EffectiveSeed); 0 selects 1.
	BaseSeed int64
	// DisableCache turns off result caching and single-flight joining,
	// so every spec executes even when repeated — benchmarks measuring
	// run throughput need this.
	DisableCache bool
	// DisableWorkloadCache turns off the shared workload-trace cache,
	// so every run re-synthesizes its generator stream. Results are
	// bit-identical either way (the cache stores exactly what the
	// generator would emit); the switch exists for memory-constrained
	// sweeps and for benchmarking synthesis cost.
	DisableWorkloadCache bool
	// Telemetry, when non-nil, observes the sweep live: run lifecycle
	// counters, cache hits, queue depth, and per-run wall-time
	// distribution, plus the usual monitor/DVFS instrumentation inside
	// each run. Nil runs unobserved.
	Telemetry *telemetry.Hub
}

// Engine executes spec sweeps. An Engine is safe for concurrent use;
// its cache is shared across Run calls, so repeating a sweep is nearly
// free.
type Engine struct {
	cfg Config

	// traces shares materialized workload streams across runs; nil
	// when Config.DisableWorkloadCache is set.
	traces *wcache.Cache

	mu       sync.Mutex
	cache    map[string]*governor.Result // guarded by mu
	inflight map[string]*flight          // guarded by mu

	// pending counts accepted-but-unfinished specs for the queue-depth
	// gauge.
	pending atomic.Int64
}

// flight is one in-progress execution that duplicate specs join
// instead of re-running.
type flight struct {
	done chan struct{}
	res  *governor.Result
	err  error
}

// New builds an engine.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:      cfg,
		cache:    make(map[string]*governor.Result),
		inflight: make(map[string]*flight),
	}
	if !cfg.DisableWorkloadCache {
		e.traces = wcache.New(wcache.Config{Telemetry: cfg.Telemetry})
	}
	return e
}

// workers resolves the configured pool size.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run shards the specs across the worker pool and streams one Result
// per spec. The channel is buffered to len(specs), so workers never
// block on delivery and always drain even if the caller abandons the
// channel; it is closed after the last result. Sharding is static
// (worker w takes specs w, w+n, w+2n, ...), which pins every spec's
// executing worker independent of timing.
func (e *Engine) Run(ctx context.Context, specs []Spec) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Result, len(specs))
	resolved := make([]Spec, len(specs))
	for i, sp := range specs {
		resolved[i] = e.resolve(sp)
	}
	e.addPending(len(specs))

	workers := e.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(resolved); i += workers {
				out <- e.runOne(ctx, i, resolved[i])
				e.addPending(-1)
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// RunAll runs the sweep to completion and returns results in spec
// order. The returned error is ctx.Err() if the sweep was canceled,
// else the lowest-index run failure, else nil; the full result slice
// is returned either way so partial sweeps stay inspectable.
func (e *Engine) RunAll(ctx context.Context, specs []Spec) ([]Result, error) {
	out := make([]Result, 0, len(specs))
	for r := range e.Run(ctx, specs) {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return out, err
		}
	}
	return out, FirstError(out)
}

// resolve fills a spec's derived fields so caching, seeding, and
// execution all see the same canonical value.
func (e *Engine) resolve(sp Spec) Spec {
	sp.Seed = sp.EffectiveSeed(e.cfg.BaseSeed)
	if sp.GranularityUops == 0 {
		sp.GranularityUops = 100_000_000
	}
	return sp
}

// addPending moves the queue-depth gauge.
func (e *Engine) addPending(delta int) {
	v := e.pending.Add(int64(delta))
	if tel := e.cfg.Telemetry; tel != nil {
		tel.FleetQueueDepth.Set(float64(v))
	}
}

// runOne produces the Result for one resolved spec: cache hit, joined
// duplicate, fresh execution, or cancellation.
func (e *Engine) runOne(ctx context.Context, idx int, sp Spec) Result {
	if err := ctx.Err(); err != nil {
		return Result{Index: idx, Spec: sp, Status: StatusCanceled, Err: err}
	}
	if e.cfg.DisableCache {
		return e.executeResult(ctx, idx, sp)
	}

	key := sp.Key()
	e.mu.Lock()
	if res, ok := e.cache[key]; ok {
		e.mu.Unlock()
		if tel := e.cfg.Telemetry; tel != nil {
			tel.FleetCacheHits.Inc()
		}
		return Result{Index: idx, Spec: sp, Status: StatusCached, Res: res}
	}
	if f, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return Result{Index: idx, Spec: sp, Status: StatusCanceled, Err: ctx.Err()}
		}
		if f.err != nil {
			return e.failure(idx, sp, f.err, 0)
		}
		if tel := e.cfg.Telemetry; tel != nil {
			tel.FleetCacheHits.Inc()
		}
		return Result{Index: idx, Spec: sp, Status: StatusCached, Res: f.res}
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.mu.Unlock()

	r := e.executeResult(ctx, idx, sp)
	f.res, f.err = r.Res, r.Err
	close(f.done)
	e.mu.Lock()
	delete(e.inflight, key)
	if r.Err == nil && r.Res != nil {
		e.cache[key] = r.Res
	}
	e.mu.Unlock()
	return r
}

// executeResult runs the spec and wraps the outcome.
func (e *Engine) executeResult(ctx context.Context, idx int, sp Spec) Result {
	tel := e.cfg.Telemetry
	if tel != nil {
		tel.FleetStarted.Inc()
	}
	runCtx := ctx
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := runSpec(runCtx, sp, tel, e.traces)
	elapsed := time.Since(start)
	if tel != nil {
		tel.FleetRunSeconds.Observe(elapsed.Seconds())
		if err != nil {
			tel.FleetFailed.Inc()
		} else {
			tel.FleetCompleted.Inc()
		}
	}
	if err != nil {
		return e.failure(idx, sp, err, elapsed)
	}
	return Result{Index: idx, Spec: sp, Status: StatusOK, Res: res, Elapsed: elapsed}
}

// failure classifies an error outcome: context errors mean the run was
// cut short, everything else is a genuine failure.
func (e *Engine) failure(idx int, sp Spec, err error, elapsed time.Duration) Result {
	status := StatusFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = StatusCanceled
	}
	return Result{Index: idx, Spec: sp, Status: status, Err: err, Elapsed: elapsed}
}

// runSpec materializes and executes one resolved spec: workload
// profile, classifier, generator, translation, policy, governed run.
// A non-nil trace cache supplies shared, read-only workload streams;
// otherwise each run synthesizes its own.
func runSpec(ctx context.Context, sp Spec, tel *telemetry.Hub, traces *wcache.Cache) (*governor.Result, error) {
	prof, err := workload.ByName(sp.Workload)
	if err != nil {
		return nil, err
	}
	var tab *phase.Table
	if sp.Phases != "" {
		tab, err = phase.ParseTable("custom", sp.Phases)
		if err != nil {
			return nil, err
		}
	}
	params := workload.Params{
		GranularityUops: float64(sp.GranularityUops),
		Seed:            sp.Seed,
		Intervals:       sp.Intervals,
	}
	intervals := sp.Intervals
	if intervals <= 0 {
		intervals = prof.DefaultIntervals
	}
	var gen workload.Generator
	if traces != nil {
		gen = traces.Get(prof, params).Generator()
	} else {
		gen = prof.Generator(params)
	}
	cfg := governor.Config{
		GranularityUops: sp.GranularityUops,
		// The run logs exactly one entry per interval; sizing the kernel
		// log to that count (clamped to the module's default bound, so
		// ring semantics are unchanged) makes the PMI path allocation-free.
		LogCapacity: min(intervals, 65536),
		Telemetry:   tel,
	}
	if tab != nil {
		cfg.Classifier = tab
	}
	if sp.Bound > 0 {
		tr, err := boundedTranslation(sp.Bound, tab)
		if err != nil {
			return nil, err
		}
		cfg.Translation = tr
	}
	pol, err := policyFor(sp, gen, cfg.Classifier)
	if err != nil {
		return nil, err
	}
	return governor.RunContext(ctx, gen, pol, cfg)
}

// boundedTranslation derives the Section 6.3 conservative translation:
// settings chosen so the model's worst-case slowdown stays under the
// bound, derived at a pessimistic memory-level parallelism of 2 and
// the core's peak UPC of 1.5.
func boundedTranslation(bound float64, tab *phase.Table) (*dvfs.Translation, error) {
	if tab == nil {
		tab = phase.Default()
	}
	m := cpusim.New(cpusim.DefaultConfig())
	slow := func(mem, coreUPC, f, fmax float64) float64 {
		return m.SlowdownMLP(mem, coreUPC, 2.0, f, fmax)
	}
	return dvfs.DeriveBounded(dvfs.PentiumM(), tab, slow, bound, 1.5)
}

// policyFor resolves the spec's policy string, special-casing the
// oracle: its "future" is the workload's phase trace, which only the
// engine (holding the generator) can precompute.
func policyFor(sp Spec, gen workload.Generator, cls phase.Classifier) (governor.Policy, error) {
	pol, err := governor.PolicyFromSpec(sp.Policy)
	if err == nil {
		return pol, nil
	}
	if errors.Is(err, governor.ErrOracleFuture) {
		future, ferr := governor.FuturePhases(gen, cls, machine.New(machine.Config{}))
		if ferr != nil {
			return nil, ferr
		}
		return governor.Oracle(future), nil
	}
	return nil, err
}

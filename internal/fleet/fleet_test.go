package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"phasemon/internal/telemetry"
)

// sweepSpecs is a mixed sweep: several workloads, managed and
// monitoring policies, one custom classifier, one bounded translation.
// All specs are distinct, so fresh-vs-cached status is deterministic.
func sweepSpecs() []Spec {
	return []Spec{
		{Workload: "applu_in", Policy: "baseline", Intervals: 60},
		{Workload: "applu_in", Policy: "gpht_8_128", Intervals: 60},
		{Workload: "applu_in", Policy: "reactive", Intervals: 60},
		{Workload: "gzip_graphic", Policy: "gpht_8_128", Intervals: 60},
		{Workload: "gzip_graphic", Policy: "mon:gpht_8_128", Intervals: 60},
		{Workload: "swim_in", Policy: "gpht_4_64", Intervals: 40},
		{Workload: "mcf_inp", Policy: "gpht_8_128", Intervals: 40, Bound: 0.05},
		{Workload: "equake_in", Policy: "varwindow_128_0.005", Intervals: 40},
		{Workload: "crafty_in", Policy: "oracle", Intervals: 40},
		// Five boundaries define six phases, matching the ladder so the
		// identity translation stays derivable.
		{Workload: "applu_in", Policy: "gpht_8_128", Phases: "0.004,0.008,0.012,0.02,0.03", Intervals: 40},
	}
}

// fingerprint reduces a result set to a canonical string: everything
// that must be bit-identical across worker counts.
func fingerprint(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%d %s %s", r.Index, r.Spec.Key(), r.Status)
		if r.Res != nil {
			fmt.Fprintf(&b, " pol=%s run=%v acc=%d/%d ov=%v bv=%d",
				r.Res.Policy, r.Res.Run,
				r.Res.Accuracy.Correct(), r.Res.Accuracy.Total(),
				r.Res.OverheadFraction, r.Res.BudgetViolations)
		}
		if r.Err != nil {
			fmt.Fprintf(&b, " err=%v", r.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := sweepSpecs()
	var want string
	for _, workers := range []int{1, 4, 16} {
		e := New(Config{Workers: workers, BaseSeed: 42})
		results, err := e.RunAll(context.Background(), specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(specs) {
			t.Fatalf("workers=%d: %d results for %d specs", workers, len(results), len(specs))
		}
		got := fingerprint(results)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d produced different results than workers=1:\n--- want\n%s--- got\n%s", workers, want, got)
		}
	}
}

// TestWorkloadCacheDeterminism is the wcache invisibility contract:
// sweeping with the shared workload-trace cache on and off must
// produce bit-identical result fingerprints at every worker count.
func TestWorkloadCacheDeterminism(t *testing.T) {
	specs := sweepSpecs()
	var want string
	for _, disable := range []bool{false, true} {
		for _, workers := range []int{1, 4, 16} {
			e := New(Config{Workers: workers, BaseSeed: 42, DisableWorkloadCache: disable})
			results, err := e.RunAll(context.Background(), specs)
			if err != nil {
				t.Fatalf("cacheOff=%v workers=%d: %v", disable, workers, err)
			}
			got := fingerprint(results)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("cacheOff=%v workers=%d diverged from cached workers=1:\n--- want\n%s--- got\n%s",
					disable, workers, want, got)
			}
		}
	}
}

// TestWorkloadCacheShares: distinct specs over the same workload
// stream synthesize the trace once; the remainder are cache hits.
func TestWorkloadCacheShares(t *testing.T) {
	hub := telemetry.NewHub(6)
	e := New(Config{Workers: 2, Telemetry: hub})
	_, err := e.RunAll(context.Background(), []Spec{
		{Workload: "applu_in", Policy: "baseline", Intervals: 40},
		{Workload: "applu_in", Policy: "gpht_8_128", Intervals: 40},
		{Workload: "applu_in", Policy: "reactive", Intervals: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hub.WorkloadCacheMisses.Value(); got != 1 {
		t.Errorf("WorkloadCacheMisses = %d, want 1 (one distinct trace)", got)
	}
	if got := hub.WorkloadCacheHits.Value(); got != 2 {
		t.Errorf("WorkloadCacheHits = %d, want 2", got)
	}
}

func TestSharedWorkloadStreams(t *testing.T) {
	// Policies over the same workload must see the same input stream:
	// with derived seeds, the baseline and managed runs retire the same
	// instruction count.
	e := New(Config{Workers: 4, BaseSeed: 7})
	results, err := e.RunAll(context.Background(), []Spec{
		{Workload: "applu_in", Policy: "baseline", Intervals: 80},
		{Workload: "applu_in", Policy: "mon:gpht_8_128", Intervals: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Spec.Seed != results[1].Spec.Seed {
		t.Fatalf("same workload resolved different seeds: %d vs %d",
			results[0].Spec.Seed, results[1].Spec.Seed)
	}
	if results[0].Res.Run.Uops != results[1].Res.Run.Uops {
		t.Errorf("baseline and monitored runs diverged on input: %v vs %v uops",
			results[0].Res.Run.Uops, results[1].Res.Run.Uops)
	}
}

func TestEffectiveSeed(t *testing.T) {
	a := Spec{Workload: "applu_in"}
	if s := a.EffectiveSeed(0); s == 0 {
		t.Error("derived seed must be nonzero")
	}
	if a.EffectiveSeed(1) != a.EffectiveSeed(1) {
		t.Error("derived seed must be stable")
	}
	if a.EffectiveSeed(1) == a.EffectiveSeed(2) {
		t.Error("derived seed must depend on the base seed")
	}
	b := Spec{Workload: "swim_in"}
	if a.EffectiveSeed(1) == b.EffectiveSeed(1) {
		t.Error("derived seed must depend on the workload")
	}
	managed := Spec{Workload: "applu_in", Policy: "gpht_8_128"}
	if a.EffectiveSeed(1) != managed.EffectiveSeed(1) {
		t.Error("derived seed must not depend on the policy")
	}
	pinned := Spec{Workload: "applu_in", Seed: 99}
	if pinned.EffectiveSeed(1) != 99 {
		t.Error("explicit seed must win")
	}
}

func TestCacheHits(t *testing.T) {
	hub := telemetry.NewHub(6)
	e := New(Config{Workers: 2, Telemetry: hub})
	specs := []Spec{
		{Workload: "applu_in", Policy: "baseline", Intervals: 40},
		{Workload: "applu_in", Policy: "gpht_8_128", Intervals: 40},
	}
	first, err := e.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Status != StatusCached {
			t.Errorf("repeat spec %d: status %s, want cached", i, r.Status)
		}
		if r.Res != first[i].Res {
			t.Errorf("repeat spec %d did not reuse the cached result", i)
		}
	}
	if got := hub.FleetCacheHits.Value(); got != uint64(len(specs)) {
		t.Errorf("FleetCacheHits = %d, want %d", got, len(specs))
	}
	if got := hub.FleetStarted.Value(); got != uint64(len(specs)) {
		t.Errorf("FleetStarted = %d, want %d (cache hits must not re-run)", got, len(specs))
	}
}

func TestDuplicateSpecsRunOnce(t *testing.T) {
	hub := telemetry.NewHub(6)
	e := New(Config{Workers: 4, Telemetry: hub})
	sp := Spec{Workload: "applu_in", Policy: "gpht_8_128", Intervals: 40}
	results, err := e.RunAll(context.Background(), []Spec{sp, sp, sp, sp})
	if err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, r := range results {
		switch r.Status {
		case StatusOK:
			fresh++
		case StatusCached:
		default:
			t.Errorf("spec %d: unexpected status %s (%v)", r.Index, r.Status, r.Err)
		}
	}
	if fresh != 1 {
		t.Errorf("%d fresh executions of identical specs, want exactly 1", fresh)
	}
	if got := hub.FleetStarted.Value(); got != 1 {
		t.Errorf("FleetStarted = %d, want 1", got)
	}
}

func TestDisableCache(t *testing.T) {
	hub := telemetry.NewHub(6)
	e := New(Config{Workers: 2, DisableCache: true, Telemetry: hub})
	sp := Spec{Workload: "applu_in", Policy: "baseline", Intervals: 40}
	results, err := e.RunAll(context.Background(), []Spec{sp, sp})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status != StatusOK {
			t.Errorf("spec %d: status %s, want ok (cache disabled)", r.Index, r.Status)
		}
	}
	if got := hub.FleetStarted.Value(); got != 2 {
		t.Errorf("FleetStarted = %d, want 2", got)
	}
}

func TestRunFailuresPropagate(t *testing.T) {
	e := New(Config{Workers: 2})
	results, err := e.RunAll(context.Background(), []Spec{
		{Workload: "applu_in", Policy: "baseline", Intervals: 20},
		{Workload: "no_such_bench", Policy: "baseline", Intervals: 20},
		{Workload: "applu_in", Policy: "gpht_0", Intervals: 20},
	})
	if err == nil {
		t.Fatal("want error from failing specs")
	}
	if !strings.Contains(err.Error(), "no_such_bench") {
		t.Errorf("FirstError should report the lowest-index failure, got %v", err)
	}
	if results[0].Status != StatusOK {
		t.Errorf("healthy spec contaminated: %s (%v)", results[0].Status, results[0].Err)
	}
	for _, i := range []int{1, 2} {
		if results[i].Status != StatusFailed || results[i].Err == nil {
			t.Errorf("spec %d: status %s err %v, want failed", i, results[i].Status, results[i].Err)
		}
	}
}

func TestCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	// Runs must be long enough that the whole sweep cannot finish in
	// the gap between the first result arriving and cancel() landing —
	// at 400 intervals the zero-alloc hot path races through all 32
	// specs first and no run is left to cancel. Canceled runs abort at
	// interval granularity, so the long tail costs nothing.
	specs := make([]Spec, 32)
	for i := range specs {
		specs[i] = Spec{Workload: "applu_in", Policy: "gpht_8_128", Intervals: 50000, Seed: int64(i + 1)}
	}
	e := New(Config{Workers: 8, DisableCache: true})
	ch := e.Run(ctx, specs)
	<-ch // let the sweep get going
	cancel()
	seen := 1
	canceled := 0
	for r := range ch {
		seen++
		if r.Status == StatusCanceled {
			canceled++
		}
	}
	if seen != len(specs) {
		t.Fatalf("drained %d results for %d specs", seen, len(specs))
	}
	if canceled == 0 {
		t.Error("cancellation mid-sweep produced no canceled runs")
	}
	// Workers must all exit; poll briefly since close happens after
	// the last send.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAbandonedChannelStillDrains(t *testing.T) {
	// A caller that walks away after the first result must not wedge
	// the workers: the channel is buffered to len(specs).
	before := runtime.NumGoroutine()
	e := New(Config{Workers: 4})
	specs := sweepSpecs()[:4]
	ch := e.Run(context.Background(), specs)
	<-ch // read one result, abandon the rest
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("workers wedged on abandoned channel: %d goroutines before, %d now",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPerRunTimeout(t *testing.T) {
	e := New(Config{Workers: 1, Timeout: time.Nanosecond})
	results, err := e.RunAll(context.Background(), []Spec{
		{Workload: "applu_in", Policy: "baseline", Intervals: 4000},
	})
	if err == nil {
		t.Fatal("want error from timed-out run")
	}
	if results[0].Status != StatusCanceled {
		t.Errorf("status = %s, want canceled", results[0].Status)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", results[0].Err)
	}
}

func TestRunAllCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Config{Workers: 2})
	_, err := e.RunAll(ctx, sweepSpecs()[:3])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOK:       "ok",
		StatusCached:   "cached",
		StatusFailed:   "failed",
		StatusCanceled: "canceled",
		Status(0):      "status(0)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", uint8(s), got, want)
		}
	}
}

func TestFirstErrorOrdering(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	rs := []Result{
		{Index: 5, Spec: Spec{Workload: "w5"}, Status: StatusFailed, Err: errB},
		{Index: 2, Spec: Spec{Workload: "w2"}, Status: StatusFailed, Err: errA},
		{Index: 0, Status: StatusOK},
	}
	if err := FirstError(rs); !errors.Is(err, errA) {
		t.Errorf("FirstError = %v, want the index-2 failure", err)
	}
	if err := FirstError(rs[2:]); err != nil {
		t.Errorf("FirstError over successes = %v, want nil", err)
	}
}

func TestTelemetryLifecycleCounters(t *testing.T) {
	hub := telemetry.NewHub(6)
	e := New(Config{Workers: 2, Telemetry: hub})
	specs := sweepSpecs()[:4]
	if _, err := e.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if got := hub.FleetStarted.Value(); got != uint64(len(specs)) {
		t.Errorf("FleetStarted = %d, want %d", got, len(specs))
	}
	if got := hub.FleetCompleted.Value(); got != uint64(len(specs)) {
		t.Errorf("FleetCompleted = %d, want %d", got, len(specs))
	}
	if got := hub.FleetQueueDepth.Value(); got != 0 {
		t.Errorf("FleetQueueDepth = %v after sweep, want 0", got)
	}
	if hub.FleetRunSeconds.Snapshot().Count != uint64(len(specs)) {
		t.Errorf("FleetRunSeconds count = %d, want %d", hub.FleetRunSeconds.Snapshot().Count, len(specs))
	}
}

package fleet

import (
	"fmt"
	"hash/fnv"
	"time"

	"phasemon/internal/governor"
)

// Spec describes one governed run: which workload to generate, which
// policy to manage it with, and the run geometry. Specs are plain
// comparable data — a sweep is a []Spec, and the engine owns turning
// each into a generator, predictor, and machine.
type Spec struct {
	// Workload names a profile from the workload registry
	// ("applu_in", "gzip_graphic", ...). Required.
	Workload string
	// Policy is a governor.PolicyFromSpec string: "baseline",
	// "reactive", a predictor spec like "gpht_8_128", a monitoring-only
	// "mon:<spec>", or "oracle" (the engine precomputes the future).
	Policy string
	// Phases optionally overrides the classifier with comma-separated
	// Mem/Uop boundaries (phase.ParseTable grammar). Empty selects the
	// paper's Table 1.
	Phases string
	// Intervals bounds the run length; 0 runs the profile to
	// completion.
	Intervals int
	// Seed seeds the workload generator. 0 derives a per-workload seed
	// from the engine's BaseSeed, so identical workloads see identical
	// streams under every policy — the property like-for-like policy
	// comparisons rest on.
	Seed int64
	// Bound, when positive, replaces the identity translation with a
	// conservative one derived to keep worst-case slowdown under this
	// fraction (Section 6.3's 5% bound is 0.05).
	Bound float64
	// GranularityUops is the sampling interval; 0 selects the paper's
	// 100M uops.
	GranularityUops uint64
}

// Key renders the spec into its canonical cache-key form. Two specs
// with equal keys describe byte-identical runs.
func (s Spec) Key() string {
	return fmt.Sprintf("w=%s|p=%s|ph=%s|i=%d|s=%d|b=%g|g=%d",
		s.Workload, s.Policy, s.Phases, s.Intervals, s.Seed, s.Bound, s.GranularityUops)
}

// EffectiveSeed resolves the seed a run will actually use: the spec's
// own seed when set, otherwise a stable mix of base and the workload
// name. Mixing over the workload alone (never the policy) keeps every
// policy on the same input stream, and the value is independent of
// worker count, submission order, and scheduling.
func (s Spec) EffectiveSeed(base int64) int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	if base == 0 {
		base = 1
	}
	h := fnv.New64a()
	h.Write([]byte(s.Workload))
	mixed := int64(h.Sum64()&0x7fffffffffffffff) ^ base
	if mixed == 0 {
		mixed = 1
	}
	return mixed
}

// Status classifies how a fleet run concluded.
type Status uint8

const (
	// StatusOK is a freshly executed, successful run.
	StatusOK Status = iota + 1
	// StatusCached is a successful result served from the engine's
	// cache (or joined from a concurrent identical run).
	StatusCached
	// StatusFailed is a run that returned an error.
	StatusFailed
	// StatusCanceled is a run abandoned because the sweep's context was
	// canceled or its per-run timeout expired.
	StatusCanceled
)

// String labels the status for reports.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCached:
		return "cached"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Result is one spec's outcome. Res is shared with the engine's cache
// when Status is StatusCached; treat it as read-only.
type Result struct {
	// Index is the spec's position in the submitted slice, so streamed
	// results can be reordered deterministically.
	Index int
	// Spec is the resolved spec (defaults and derived seed filled in).
	Spec Spec
	// Status classifies the outcome.
	Status Status
	// Res is the governed run's result when the run succeeded.
	Res *governor.Result
	// Err is set when Status is StatusFailed or StatusCanceled.
	Err error
	// Elapsed is the run's wall time; zero for cache hits.
	Elapsed time.Duration
}

// OK reports whether the result carries a usable governor.Result.
func (r Result) OK() bool {
	switch r.Status {
	case StatusOK, StatusCached:
		return true
	case StatusFailed, StatusCanceled:
		return false
	default:
		return false
	}
}

// FirstError returns the lowest-index failure in a result set, or nil
// when every run succeeded. Deterministic regardless of the order the
// results streamed in.
func FirstError(results []Result) error {
	var first *Result
	for i := range results {
		r := &results[i]
		if r.OK() || r.Err == nil {
			continue
		}
		if first == nil || r.Index < first.Index {
			first = r
		}
	}
	if first == nil {
		return nil
	}
	return fmt.Errorf("fleet: spec %d (%s under %s): %w",
		first.Index, first.Spec.Workload, first.Spec.Policy, first.Err)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"phasemon/internal/phase"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestVariation(t *testing.T) {
	cases := []struct {
		xs        []float64
		threshold float64
		want      float64
	}{
		{nil, 0.005, 0},
		{[]float64{1}, 0.005, 0},
		{[]float64{0.01, 0.01, 0.01}, 0.005, 0},
		{[]float64{0.00, 0.01, 0.00}, 0.005, 1},
		{[]float64{0.00, 0.01, 0.011, 0.02}, 0.005, 2.0 / 3},
		// Exactly at the threshold does not count as a change.
		{[]float64{0, 0.005}, 0.005, 0},
	}
	for _, c := range cases {
		if got := Variation(c.xs, c.threshold); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Variation(%v, %v) = %v, want %v", c.xs, c.threshold, got, c.want)
		}
	}
}

func TestVariationBounds(t *testing.T) {
	f := func(xs []float64) bool {
		v := Variation(xs, 0.005)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyQuadrants(t *testing.T) {
	cases := []struct {
		mem, vari float64
		want      Quadrant
	}{
		{0.001, 0.01, Q1}, // stable, CPU bound: most of SPEC
		{0.110, 0.05, Q2}, // mcf: memory bound, stable
		{0.021, 0.40, Q3}, // applu: variable, memory bound
		{0.006, 0.30, Q4}, // variable but little to save
	}
	for _, c := range cases {
		got := Classify(c.mem, c.vari, DefaultSavingsSplit, DefaultVariationSplit)
		if got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.mem, c.vari, got, c.want)
		}
	}
}

func TestQuadrantString(t *testing.T) {
	if Q3.String() != "Q3" {
		t.Errorf("Q3.String() = %q", Q3.String())
	}
	if Quadrant(9).String() != "Q(9)" {
		t.Errorf("Quadrant(9).String() = %q", Quadrant(9).String())
	}
}

func TestTally(t *testing.T) {
	var ta Tally
	if _, err := ta.Accuracy(); err == nil {
		t.Error("empty tally should error")
	}
	if _, err := ta.MispredictionRate(); err == nil {
		t.Error("empty tally should error")
	}
	ta.Record(1, 1)
	ta.Record(2, 1)
	ta.Record(3, 3)
	ta.Record(4, 4)
	if ta.Total() != 4 || ta.Correct() != 3 {
		t.Errorf("tally = %d/%d", ta.Correct(), ta.Total())
	}
	a, err := ta.Accuracy()
	if err != nil || math.Abs(a-0.75) > 1e-12 {
		t.Errorf("Accuracy = %v, %v", a, err)
	}
	m, err := ta.MispredictionRate()
	if err != nil || math.Abs(m-0.25) > 1e-12 {
		t.Errorf("MispredictionRate = %v, %v", m, err)
	}
	ta.Reset()
	if ta.Total() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMispredictionReduction(t *testing.T) {
	mk := func(correct, total int) *Tally {
		var ta Tally
		for i := 0; i < total; i++ {
			if i < correct {
				ta.Record(1, 1)
			} else {
				ta.Record(2, 1)
			}
		}
		return &ta
	}
	// 50% wrong vs 10% wrong: 5x reduction.
	r, err := MispredictionReduction(mk(50, 100), mk(90, 100))
	if err != nil || math.Abs(r-5) > 1e-12 {
		t.Errorf("reduction = %v, %v", r, err)
	}
	// Perfect better predictor: +Inf.
	r, err = MispredictionReduction(mk(50, 100), mk(100, 100))
	if err != nil || !math.IsInf(r, 1) {
		t.Errorf("reduction vs perfect = %v, %v", r, err)
	}
	// Both perfect: 1.
	r, err = MispredictionReduction(mk(10, 10), mk(10, 10))
	if err != nil || r != 1 {
		t.Errorf("both perfect = %v, %v", r, err)
	}
	var empty Tally
	if _, err := MispredictionReduction(&empty, mk(1, 1)); err == nil {
		t.Error("empty worse tally should error")
	}
	if _, err := MispredictionReduction(mk(1, 1), &empty); err == nil {
		t.Error("empty better tally should error")
	}
}

func TestConfusion(t *testing.T) {
	c, err := NewConfusion(6)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(1, 1)
	c.Record(1, 1)
	c.Record(2, 1) // actual 1 predicted as 2
	c.Record(6, 6)
	c.Record(phase.None, 3) // unpredicted interval
	if got := c.Count(1, 1); got != 2 {
		t.Errorf("Count(1,1) = %d", got)
	}
	if got := c.Count(2, 1); got != 1 {
		t.Errorf("Count(2,1) = %d", got)
	}
	a, ok := c.PerPhaseAccuracy(1)
	if !ok || math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("PerPhaseAccuracy(1) = %v, %v", a, ok)
	}
	if _, ok := c.PerPhaseAccuracy(4); ok {
		t.Error("PerPhaseAccuracy of unseen phase should report !ok")
	}
	a, ok = c.PerPhaseAccuracy(3)
	if !ok || a != 0 {
		t.Errorf("PerPhaseAccuracy(3) = %v, %v (None prediction must count as wrong)", a, ok)
	}
	if _, err := NewConfusion(0); err == nil {
		t.Error("NewConfusion(0) should fail")
	}
}

func TestConfusionCountsExport(t *testing.T) {
	c, err := NewConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPhases() != 3 {
		t.Errorf("NumPhases = %d", c.NumPhases())
	}
	c.Record(2, 1)
	c.Record(1, 1)
	m := c.Counts()
	if len(m) != 4 || len(m[0]) != 4 {
		t.Fatalf("Counts is %dx%d, want 4x4", len(m), len(m[0]))
	}
	if m[1][2] != 1 || m[1][1] != 1 {
		t.Errorf("Counts = %v", m)
	}
	// The export is a copy: mutating it must not touch the matrix.
	m[1][2] = 99
	if c.Count(2, 1) != 1 {
		t.Error("Counts must return a copy")
	}
}

func TestConfusionRowNormalized(t *testing.T) {
	c, err := NewConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(1, 1)
	c.Record(2, 1)
	c.Record(2, 1)
	c.Record(phase.None, 2) // unpredicted interval for actual 2
	n := c.RowNormalized()
	if math.Abs(n[1][1]-1.0/3) > 1e-12 || math.Abs(n[1][2]-2.0/3) > 1e-12 {
		t.Errorf("row 1 = %v", n[1])
	}
	if n[2][0] != 1 {
		t.Errorf("row 2 = %v (None predictions normalize into column 0)", n[2])
	}
	// Rows with no observations stay all-zero — no NaN leakage.
	for j, v := range n[3] {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("empty row 3 column %d = %v, want 0", j, v)
		}
	}
	// Non-empty rows sum to 1.
	for i := 1; i <= 2; i++ {
		sum := 0.0
		for _, v := range n[i] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestConfusionEmptyMatrixExports(t *testing.T) {
	c, err := NewConfusion(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range c.Counts() {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("fresh Counts not all-zero: %v", c.Counts())
			}
		}
	}
	for _, row := range c.RowNormalized() {
		for _, v := range row {
			if v != 0 || math.IsNaN(v) {
				t.Fatalf("fresh RowNormalized not all-zero: %v", c.RowNormalized())
			}
		}
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, %v", got, err)
	}
	got, err = GeoMean([]float64{0.5, 0.5, 0.5})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("GeoMean(0.5 x3) = %v, %v", got, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero accepted")
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("negative accepted")
	}
}

func TestNewConfusionFromCounts(t *testing.T) {
	counts := [][]int{
		{0, 0, 0},
		{0, 5, 1},
		{0, 2, 7},
	}
	c, err := NewConfusionFromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPhases() != 2 {
		t.Errorf("NumPhases = %d, want 2", c.NumPhases())
	}
	if got := c.Count(phase.ID(2), phase.ID(1)); got != 1 {
		t.Errorf("Count(pred 2, actual 1) = %d, want 1", got)
	}
	if a, ok := c.PerPhaseAccuracy(phase.ID(2)); !ok || math.Abs(a-7.0/9.0) > 1e-12 {
		t.Errorf("PerPhaseAccuracy(2) = %v, %v", a, ok)
	}
	// The input is deep-copied: mutating it must not change the matrix.
	counts[1][1] = 99
	if got := c.Count(phase.ID(1), phase.ID(1)); got != 5 {
		t.Errorf("matrix aliases caller's slice: Count = %d, want 5", got)
	}
	// Round trip through Counts.
	c2, err := NewConfusionFromCounts(c.Counts())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count(phase.ID(1), phase.ID(2)) != 2 {
		t.Error("Counts -> NewConfusionFromCounts round trip lost data")
	}
	// Malformed grids are rejected.
	for name, bad := range map[string][][]int{
		"empty":    {},
		"1x1":      {{0}},
		"ragged":   {{0, 0}, {0}},
		"negative": {{0, 0}, {0, -1}},
	} {
		if _, err := NewConfusionFromCounts(bad); err == nil {
			t.Errorf("%s grid accepted", name)
		}
	}
}

// Package stats provides the workload-characterization and
// prediction-quality metrics used throughout the paper's evaluation:
// sample variation (Figure 3's y axis), power-savings potential
// (Figure 3's x axis), quadrant categorization, and prediction
// accuracy tallies.
package stats

import (
	"errors"
	"fmt"
	"math"

	"phasemon/internal/phase"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variation returns the fraction (0..1) of adjacent sample pairs whose
// absolute difference exceeds threshold. With Mem/Uop samples at the
// paper's 100M-instruction granularity and threshold 0.005, this is
// exactly Figure 3's "sample variation" — the measure of how unstable
// a benchmark is.
func Variation(xs []float64, threshold float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	n := 0
	for i := 1; i < len(xs); i++ {
		if math.Abs(xs[i]-xs[i-1]) > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs)-1)
}

// Quadrant is Figure 3's benchmark categorization.
type Quadrant int

// The four quadrants of the variability × savings-potential plane.
const (
	// Q1: stable, little power-saving opportunity (most of SPEC).
	Q1 Quadrant = 1
	// Q2: stable, high saving potential (swim, mcf).
	Q2 Quadrant = 2
	// Q3: variable and high saving potential (applu, equake, ...).
	Q3 Quadrant = 3
	// Q4: variable, low saving potential.
	Q4 Quadrant = 4
)

// String returns "Q1".."Q4".
func (q Quadrant) String() string {
	if q < Q1 || q > Q4 {
		return fmt.Sprintf("Q(%d)", int(q))
	}
	return fmt.Sprintf("Q%d", int(q))
}

// DefaultVariationSplit and DefaultSavingsSplit are the quadrant
// boundaries read off the paper's Figure 3: a benchmark is "variable"
// when more than ~18% of its samples move by >0.005 Mem/Uop (the split
// separating the "last 6" variable benchmarks from the rest), and has
// savings potential when its average Mem/Uop exceeds ~0.008 (i.e. it
// spends real time beyond phase 2).
const (
	DefaultVariationSplit = 0.18
	DefaultSavingsSplit   = 0.008
)

// Classify places a benchmark in a Figure 3 quadrant from its average
// Mem/Uop (savings potential) and sample variation fraction.
func Classify(avgMemPerUop, variation, savingsSplit, variationSplit float64) Quadrant {
	variable := variation > variationSplit
	savings := avgMemPerUop > savingsSplit
	switch {
	case !variable && !savings:
		return Q1
	case !variable && savings:
		return Q2
	case variable && savings:
		return Q3
	default:
		return Q4
	}
}

// Tally accumulates prediction outcomes.
type Tally struct {
	total   int
	correct int
}

// ErrNoPredictions reports an empty tally where a rate was required.
var ErrNoPredictions = errors.New("stats: no predictions tallied")

// Record adds one prediction outcome.
func (t *Tally) Record(predicted, actual phase.ID) {
	t.total++
	if predicted == actual {
		t.correct++
	}
}

// Total returns how many predictions were tallied.
func (t Tally) Total() int { return t.total }

// Correct returns how many predictions were correct.
func (t Tally) Correct() int { return t.correct }

// Accuracy returns the fraction of correct predictions in 0..1.
func (t Tally) Accuracy() (float64, error) {
	if t.total == 0 {
		return 0, ErrNoPredictions
	}
	return float64(t.correct) / float64(t.total), nil
}

// MispredictionRate returns 1 − accuracy.
func (t Tally) MispredictionRate() (float64, error) {
	a, err := t.Accuracy()
	if err != nil {
		return 0, err
	}
	return 1 - a, nil
}

// Reset clears the tally.
func (t *Tally) Reset() { *t = Tally{} }

// TallyFromCounts rebuilds a tally from its exported counts — the
// import path for snapshot restore, mirroring NewConfusionFromCounts.
func TallyFromCounts(total, correct int) (Tally, error) {
	if total < 0 || correct < 0 || correct > total {
		return Tally{}, fmt.Errorf("stats: tally counts %d/%d invalid", correct, total)
	}
	return Tally{total: total, correct: correct}, nil
}

// MispredictionReduction returns how many times fewer mispredictions
// "better" makes than "worse" (the paper's "6X fewer mispredictions"
// comparisons). It returns +Inf when better is perfect and worse is
// not, and 1 when both are perfect.
func MispredictionReduction(worse, better *Tally) (float64, error) {
	mw, err := worse.MispredictionRate()
	if err != nil {
		return 0, err
	}
	mb, err := better.MispredictionRate()
	if err != nil {
		return 0, err
	}
	if mb == 0 {
		if mw == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	return mw / mb, nil
}

// Confusion is a per-phase breakdown of predictions: rows are actual
// phases, columns predicted phases. It diagnoses which transitions a
// predictor gets wrong.
type Confusion struct {
	n      int
	counts [][]int
}

// NewConfusion builds a matrix for a classifier with n phases.
func NewConfusion(n int) (*Confusion, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: confusion needs at least 1 phase, got %d", n)
	}
	c := &Confusion{n: n, counts: make([][]int, n+1)}
	for i := range c.counts {
		c.counts[i] = make([]int, n+1)
	}
	return c, nil
}

// NewConfusionFromCounts rebuilds a matrix from a full (n+1)×(n+1)
// count grid as returned by Counts — the import path for telemetry
// layers that accumulate counts externally (e.g. in atomic cells) and
// materialize a Confusion only when exporting a view.
func NewConfusionFromCounts(counts [][]int) (*Confusion, error) {
	n := len(counts) - 1
	if n < 1 {
		return nil, fmt.Errorf("stats: confusion counts need at least a 2x2 grid, got %d rows", len(counts))
	}
	c := &Confusion{n: n, counts: make([][]int, n+1)}
	for i, row := range counts {
		if len(row) != n+1 {
			return nil, fmt.Errorf("stats: confusion row %d has %d columns, want %d", i, len(row), n+1)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("stats: negative count %d at [%d][%d]", v, i, j)
			}
		}
		c.counts[i] = append([]int(nil), row...)
	}
	return c, nil
}

// Record adds one outcome. Out-of-range IDs (including None) land in
// index 0.
func (c *Confusion) Record(predicted, actual phase.ID) {
	c.counts[c.clamp(actual)][c.clamp(predicted)]++
}

func (c *Confusion) clamp(id phase.ID) int {
	if !id.Valid(c.n) {
		return 0
	}
	return int(id)
}

// Count returns how often "actual" was predicted as "predicted".
func (c *Confusion) Count(predicted, actual phase.ID) int {
	return c.counts[c.clamp(actual)][c.clamp(predicted)]
}

// PerPhaseAccuracy returns the accuracy for intervals whose actual
// phase was id, and whether any such interval occurred.
func (c *Confusion) PerPhaseAccuracy(id phase.ID) (float64, bool) {
	row := c.counts[c.clamp(id)]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0, false
	}
	return float64(row[c.clamp(id)]) / float64(total), true
}

// NumPhases returns the number of phases the matrix covers.
func (c *Confusion) NumPhases() int { return c.n }

// Counts returns a copy of the full (n+1)×(n+1) count matrix: rows are
// actual phases, columns predicted phases, and index 0 collects
// None/out-of-range IDs. The copy is the caller's to mutate.
func (c *Confusion) Counts() [][]int {
	out := make([][]int, len(c.counts))
	for i, row := range c.counts {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// RowNormalized returns the count matrix with each row scaled to sum
// to 1 — the per-actual-phase prediction distribution a live accuracy
// view displays. Rows with no observations (including the whole matrix
// before any Record) stay all-zero rather than becoming NaN.
func (c *Confusion) RowNormalized() [][]float64 {
	out := make([][]float64, len(c.counts))
	for i, row := range c.counts {
		out[i] = make([]float64, len(row))
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue
		}
		for j, v := range row {
			out[i][j] = float64(v) / float64(total)
		}
	}
	return out
}

// GeoMean returns the geometric mean of xs — the conventional
// aggregate for normalized (ratio) metrics like Figure 11's
// BIPS/power/EDP columns. All inputs must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: GeoMean of empty slice")
	}
	var logSum float64
	for _, x := range xs {
		if !(x > 0) {
			return 0, fmt.Errorf("stats: GeoMean requires positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

package wcache

import (
	"sync"
	"testing"

	"phasemon/internal/telemetry"
	"phasemon/internal/workload"
)

func profile(t testing.TB, name string) *workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCachedTraceMatchesFreshGenerator: the cursor view reproduces a
// fresh generator's stream bit for bit — the cache is invisible to
// consumers.
func TestCachedTraceMatchesFreshGenerator(t *testing.T) {
	p := profile(t, "applu_in")
	params := workload.Params{Seed: 9, Intervals: 300}
	c := New(Config{})
	tr := c.Get(p, params)
	if tr.Len() != 300 {
		t.Fatalf("trace length %d, want 300", tr.Len())
	}

	fresh := p.Generator(params)
	cur := tr.Generator()
	for i := 0; ; i++ {
		fw, fok := fresh.Next()
		cw, cok := cur.Next()
		if fok != cok {
			t.Fatalf("interval %d: fresh ok=%v cursor ok=%v", i, fok, cok)
		}
		if !fok {
			break
		}
		if fw != cw {
			t.Fatalf("interval %d: fresh %+v != cached %+v", i, fw, cw)
		}
	}
	// Reset replays identically.
	cur.Reset()
	if w, ok := cur.Next(); !ok || w != tr.Works()[0] {
		t.Fatalf("cursor reset broken: %+v %v", w, ok)
	}
}

// TestKeyResolution: default granularity and the profile's default
// interval count canonicalize, so equivalent requests share a trace.
func TestKeyResolution(t *testing.T) {
	p := profile(t, "applu_in")
	c := New(Config{})
	a := c.Get(p, workload.Params{Seed: 1})
	b := c.Get(p, workload.Params{Seed: 1, GranularityUops: 100e6, Intervals: p.DefaultIntervals})
	if a != b {
		t.Error("equivalent params did not share a trace")
	}
	if a.Len() != p.DefaultIntervals {
		t.Errorf("default trace length %d, want %d", a.Len(), p.DefaultIntervals)
	}
	if d := c.Get(p, workload.Params{Seed: 2}); d == a {
		t.Error("different seeds shared a trace")
	}
}

// TestEvictionBound: the cache never holds more samples than its
// bound; least-recently-used traces leave first; oversize traces are
// served but not cached.
func TestEvictionBound(t *testing.T) {
	p := profile(t, "applu_in")
	hub := telemetry.NewHub(6)
	c := New(Config{MaxSamples: 250, Telemetry: hub})

	k1 := c.Get(p, workload.Params{Seed: 1, Intervals: 100}).Key()
	k2 := c.Get(p, workload.Params{Seed: 2, Intervals: 100}).Key()
	if got := c.Samples(); got != 200 {
		t.Fatalf("samples = %d, want 200", got)
	}
	// Touch k1 so k2 is the LRU victim.
	c.Get(p, workload.Params{Seed: 1, Intervals: 100})
	c.Get(p, workload.Params{Seed: 3, Intervals: 100})
	if c.Contains(k2) {
		t.Error("LRU victim k2 still cached")
	}
	if !c.Contains(k1) {
		t.Error("recently used k1 evicted")
	}
	if got := c.Samples(); got > 250 {
		t.Errorf("samples = %d exceeds bound 250", got)
	}
	if got := hub.WorkloadCacheEvictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}

	// An oversize trace is served, correct, and uncached.
	big := c.Get(p, workload.Params{Seed: 4, Intervals: 500})
	if big.Len() != 500 {
		t.Fatalf("oversize trace length %d", big.Len())
	}
	if c.Contains(big.Key()) {
		t.Error("oversize trace was cached")
	}
	if got := c.Samples(); got > 250 {
		t.Errorf("samples = %d exceeds bound after oversize get", got)
	}
}

// TestTelemetryCounts: hits, misses, and the sample gauge reflect
// cache activity.
func TestTelemetryCounts(t *testing.T) {
	p := profile(t, "applu_in")
	hub := telemetry.NewHub(6)
	c := New(Config{Telemetry: hub})
	c.Get(p, workload.Params{Seed: 1, Intervals: 50})
	c.Get(p, workload.Params{Seed: 1, Intervals: 50})
	c.Get(p, workload.Params{Seed: 1, Intervals: 50})
	c.Get(p, workload.Params{Seed: 2, Intervals: 50})
	if got := hub.WorkloadCacheMisses.Value(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := hub.WorkloadCacheHits.Value(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := hub.WorkloadCacheSamples.Value(); got != 100 {
		t.Errorf("samples gauge = %v, want 100", got)
	}
}

// TestSingleFlight: concurrent Gets for one key synthesize exactly
// once and all receive the same trace.
func TestSingleFlight(t *testing.T) {
	p := profile(t, "applu_in")
	hub := telemetry.NewHub(6)
	c := New(Config{Telemetry: hub})
	const goroutines = 16
	traces := make([]*Trace, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = c.Get(p, workload.Params{Seed: 7, Intervals: 400})
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("goroutine %d got a distinct trace", i)
		}
	}
	if got := hub.WorkloadCacheMisses.Value(); got != 1 {
		t.Errorf("misses = %d, want 1 (single flight)", got)
	}
	if got := c.Traces(); got != 1 {
		t.Errorf("cached traces = %d, want 1", got)
	}
}

// TestCursorZeroAlloc: iterating a cached trace allocates nothing.
func TestCursorZeroAlloc(t *testing.T) {
	p := profile(t, "applu_in")
	c := New(Config{})
	tr := c.Get(p, workload.Params{Seed: 1, Intervals: 64})
	cur := tr.Generator()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	})
	if allocs != 0 {
		t.Errorf("cursor Next allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkWorkloadCache contrasts a cache hit (cursor handout) with
// the fresh synthesis it replaces.
func BenchmarkWorkloadCache(b *testing.B) {
	p := profile(b, "applu_in")
	params := workload.Params{Seed: 1, Intervals: 200}

	b.Run("hit", func(b *testing.B) {
		c := New(Config{})
		c.Get(p, params)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := c.Get(p, params)
			gen := tr.Generator()
			for {
				if _, ok := gen.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gen := p.Generator(params)
			for {
				if _, ok := gen.Next(); !ok {
					break
				}
			}
		}
	})
}

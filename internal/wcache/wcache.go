// Package wcache is the shared workload-trace cache: an immutable,
// content-keyed store of fully materialized workload traces
// ([]cpusim.Work) that concurrent consumers — fleet workers, the
// experiments driver, oracle precomputation — read through cheap
// cursor views instead of re-synthesizing the same deterministic
// stream per run.
//
// Workload generators are deterministic functions of (profile, params,
// seed, length), so a trace is fully identified by that tuple and can
// be shared read-only without any risk to the repo's bit-identical
// determinism contract: a consumer cannot tell whether its work items
// came from a fresh generator or the cache (the fleet package's
// fingerprint tests enforce exactly that). What sharing buys is
// allocation: a 16-spec sweep over one workload materializes the trace
// once instead of 16 times.
//
// Concurrency follows the standard single-flight + LRU shape: the
// first Get for a key synthesizes the trace while duplicates wait on
// its flight; completed traces sit in an LRU bounded by *total cached
// samples* (work items), since traces vary in length and the samples,
// not the trace count, are the memory. Hits, misses, evictions, and
// the live sample count are reported through an optional
// telemetry.Hub.
package wcache

import (
	"container/list"
	"sync"

	"phasemon/internal/cpusim"
	"phasemon/internal/telemetry"
	"phasemon/internal/workload"
)

// Key identifies one materialized trace: the full content key of a
// deterministic generator instantiation. Two Gets with equal keys see
// the same backing slice.
type Key struct {
	// Workload is the profile name (e.g. "applu_in").
	Workload string
	// GranularityUops is the resolved interval length in uops.
	GranularityUops float64
	// Seed is the generator seed.
	Seed int64
	// Intervals is the resolved run length (profile default applied).
	Intervals int
}

// KeyFor canonicalizes generation parameters into a Key, resolving the
// same defaults Profile.Generator would (100M-uop granularity, the
// profile's default interval count) so equivalent requests collide.
func KeyFor(p *workload.Profile, params workload.Params) Key {
	if params.GranularityUops <= 0 {
		params.GranularityUops = 100e6
	}
	if params.Intervals <= 0 {
		params.Intervals = p.DefaultIntervals
	}
	return Key{
		Workload:        p.Name,
		GranularityUops: params.GranularityUops,
		Seed:            params.Seed,
		Intervals:       params.Intervals,
	}
}

// Trace is one immutable materialized workload. The backing slice is
// shared by every consumer; it must never be written.
type Trace struct {
	key   Key
	works []cpusim.Work
}

// Key returns the trace's content key.
func (t *Trace) Key() Key { return t.key }

// Len returns the trace length in work items.
func (t *Trace) Len() int { return len(t.works) }

// Works returns the shared read-only backing slice. Callers must not
// modify it — it is the cache's single copy.
func (t *Trace) Works() []cpusim.Work { return t.works }

// Generator returns a fresh cursor over the trace. Cursors satisfy
// workload.Generator, are independent of each other, and allocate
// nothing per Next, so handing one to each fleet worker is free.
func (t *Trace) Generator() workload.Generator { return &Cursor{t: t} }

// Cursor is a read-only iteration view over a shared Trace.
type Cursor struct {
	t *Trace
	i int
}

var _ workload.Generator = (*Cursor)(nil)

// Name implements workload.Generator.
func (c *Cursor) Name() string { return c.t.key.Workload }

// Next implements workload.Generator.
func (c *Cursor) Next() (cpusim.Work, bool) {
	if c.i >= len(c.t.works) {
		return cpusim.Work{}, false
	}
	w := c.t.works[c.i]
	c.i++
	return w, true
}

// Reset implements workload.Generator.
func (c *Cursor) Reset() { c.i = 0 }

// Works exposes the shared backing slice, the fast path
// governor.FuturePhases uses to classify a whole trace without
// re-collecting it. Read-only, as for Trace.Works.
func (c *Cursor) Works() []cpusim.Work { return c.t.works }

// DefaultMaxSamples bounds the cache at 1Mi work items (~72 MB of
// cpusim.Work), roughly a thousand paper-scale benchmark traces.
const DefaultMaxSamples = 1 << 20

// Config parameterizes a Cache.
type Config struct {
	// MaxSamples bounds the total number of cached work items across
	// all traces; zero selects DefaultMaxSamples. Traces longer than
	// the bound are synthesized and returned but never cached.
	MaxSamples int
	// Telemetry, when non-nil, receives hit/miss/eviction counters and
	// the live cached-sample gauge. Nil runs unobserved.
	Telemetry *telemetry.Hub
}

// Cache is the store. Safe for concurrent use.
type Cache struct {
	max int
	tel *telemetry.Hub

	mu       sync.Mutex
	entries  map[Key]*list.Element // guarded by mu; of *Trace
	lru      *list.List            // guarded by mu; front = most recently used
	samples  int                   // guarded by mu
	inflight map[Key]*flight       // guarded by mu
}

type flight struct {
	done chan struct{}
	t    *Trace
}

// New builds a cache.
func New(cfg Config) *Cache {
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultMaxSamples
	}
	return &Cache{
		max:      cfg.MaxSamples,
		tel:      cfg.Telemetry,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
}

// Get returns the materialized trace for (profile, params), sharing a
// previously cached one when present. Generation cannot fail (the
// profile's generator is total), so Get always returns a non-nil
// trace. Concurrent Gets for the same key synthesize once.
func (c *Cache) Get(p *workload.Profile, params workload.Params) *Trace {
	key := KeyFor(p, params)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		if c.tel != nil {
			c.tel.WorkloadCacheHits.Inc()
		}
		return el.Value.(*Trace)
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if c.tel != nil {
			// Joining a flight still avoided a synthesis: count it as a
			// hit so hit-rate reflects work saved, not map state.
			c.tel.WorkloadCacheHits.Inc()
		}
		return f.t
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.t = materialize(p, key)
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	c.insertLocked(f.t)
	samples := c.samples
	c.mu.Unlock()
	if c.tel != nil {
		c.tel.WorkloadCacheMisses.Inc()
		c.tel.WorkloadCacheSamples.Set(float64(samples))
	}
	return f.t
}

// Contains reports whether the key is currently cached (for tests and
// introspection; racy by nature under concurrent Gets).
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Samples returns the total cached work items.
func (c *Cache) Samples() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.samples
}

// Traces returns how many traces are cached.
func (c *Cache) Traces() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// insertLocked adds a freshly built trace, evicting least-recently
// used traces until the sample bound holds. Oversize traces (longer
// than the whole bound) are not cached at all.
func (c *Cache) insertLocked(t *Trace) {
	if t.Len() > c.max {
		return
	}
	if _, ok := c.entries[t.key]; ok {
		// A concurrent flight for the same key can't exist (inflight
		// de-dups), but a prior insert can: keep the existing entry.
		return
	}
	for c.samples+t.Len() > c.max {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		ev := c.lru.Remove(oldest).(*Trace)
		delete(c.entries, ev.key)
		c.samples -= ev.Len()
		if c.tel != nil {
			c.tel.WorkloadCacheEvictions.Inc()
		}
	}
	c.entries[t.key] = c.lru.PushFront(t)
	c.samples += t.Len()
}

// materialize synthesizes the full trace for a key. The work slice is
// sized exactly — the resolved interval count is the length — so the
// build is a single allocation.
func materialize(p *workload.Profile, key Key) *Trace {
	gen := p.Generator(workload.Params{
		GranularityUops: key.GranularityUops,
		Seed:            key.Seed,
		Intervals:       key.Intervals,
	})
	works := make([]cpusim.Work, 0, key.Intervals)
	for {
		w, ok := gen.Next()
		if !ok {
			break
		}
		works = append(works, w)
	}
	return &Trace{key: key, works: works}
}

package memhier_test

import (
	"fmt"

	"phasemon/internal/memhier"
)

// From program locality to the paper's phase metric: working sets on
// either side of the L2 capacity produce opposite ends of the Mem/Uop
// range.
func ExampleModel_MemPerUop() {
	m := memhier.Default()
	for _, ws := range []float64{16 << 10, 64 << 20} {
		mem, err := m.MemPerUop(memhier.AccessProfile{
			AccessesPerUop:  0.35,
			WorkingSetBytes: ws,
			SpatialRun:      4,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("working set %4.0f KB -> Mem/Uop %.4f\n", ws/1024, mem)
	}
	// Output:
	// working set   16 KB -> Mem/Uop 0.0000
	// working set 65536 KB -> Mem/Uop 0.0861
}

package memhier

import (
	"math"
	"testing"
	"testing/quick"

	"phasemon/internal/phase"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.L1.SizeBytes = 0 },
		func(c *Config) { c.L1.LineBytes = 0 },
		func(c *Config) { c.L1.LineBytes = c.L1.SizeBytes * 2 },
		func(c *Config) { c.L2.SizeBytes = c.L1.SizeBytes / 2 },
		func(c *Config) { c.ColdMissRate = -0.1 },
		func(c *Config) { c.ColdMissRate = 1 },
		func(c *Config) { c.BusPeakBytesPerS = 0 },
		func(c *Config) { c.BaseLatencyS = 0 },
	}
	for i, f := range mutate {
		c := DefaultConfig()
		f(&c)
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	m := Default()
	bad := []AccessProfile{
		{AccessesPerUop: -1},
		{AccessesPerUop: 0.3, WorkingSetBytes: math.Inf(1)},
		{AccessesPerUop: 0.3, WorkingSetBytes: 1 << 20, ReuseSkew: 1.5},
		{AccessesPerUop: 0.3, WorkingSetBytes: 1 << 20, SpatialRun: -2},
	}
	for i, p := range bad {
		if _, _, err := m.HitRates(p); err == nil {
			t.Errorf("case %d accepted by HitRates", i)
		}
		if _, err := m.MemPerUop(p); err == nil {
			t.Errorf("case %d accepted by MemPerUop", i)
		}
	}
}

func TestCacheResidentWorkloadsBarelyMiss(t *testing.T) {
	m := Default()
	p := AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 16 << 10}
	l1, l2, err := m.HitRates(p)
	if err != nil {
		t.Fatal(err)
	}
	if l1 < 0.99 || l2 < 0.85 {
		t.Errorf("cache-resident hit rates %v/%v, want ~1 and high conditional L2", l1, l2)
	}
	mem, err := m.MemPerUop(p)
	if err != nil {
		t.Fatal(err)
	}
	// Cold misses only: deep phase-1 territory.
	if got := phase.Default().Classify(phase.Sample{MemPerUop: mem}); got != 1 {
		t.Errorf("cache-resident profile lands in phase %v (mem %v)", got, mem)
	}
}

func TestWorkingSetSweepCrossesAllPhases(t *testing.T) {
	// Sweeping the working set from L1-resident to far beyond L2 at
	// uniform reuse must traverse from phase 1 to phase 6: the bridge
	// between program locality and the paper's phase taxonomy.
	// The transition band between "fits in L2" and "streams from
	// memory" is narrow (the miss ratio rises steeply past the L2
	// capacity knee), so the sweep needs fine steps to visit the
	// intermediate phases — exactly the cliff real cache-capacity
	// sweeps show.
	m := Default()
	tab := phase.Default()
	seen := map[phase.ID]bool{}
	prevMem := -1.0
	for ws := float64(8 << 10); ws <= float64(2<<30); ws *= 1.015 {
		mem, err := m.MemPerUop(AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: ws, ReuseSkew: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		if mem < prevMem-1e-12 {
			t.Fatalf("Mem/Uop not monotone in working set at %v bytes", ws)
		}
		prevMem = mem
		seen[tab.Classify(phase.Sample{MemPerUop: mem})] = true
	}
	for p := 1; p <= 6; p++ {
		if !seen[phase.ID(p)] {
			t.Errorf("working-set sweep never produced phase %d", p)
		}
	}
}

func TestReuseSkewImprovesHitRates(t *testing.T) {
	m := Default()
	base := AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 8 << 20, ReuseSkew: 1}
	hot := base
	hot.ReuseSkew = 0.5
	bMem, err := m.MemPerUop(base)
	if err != nil {
		t.Fatal(err)
	}
	hMem, err := m.MemPerUop(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !(hMem < bMem) {
		t.Errorf("skewed reuse (%v) should miss less than uniform (%v)", hMem, bMem)
	}
}

func TestSpatialLocalityMergesTransactions(t *testing.T) {
	m := Default()
	random := AccessProfile{AccessesPerUop: 0.35, WorkingSetBytes: 64 << 20, SpatialRun: 1}
	streaming := random
	streaming.SpatialRun = 8
	r, err := m.MemPerUop(random)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.MemPerUop(streaming)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-r/8) > 1e-12 {
		t.Errorf("streaming Mem/Uop %v, want exactly %v/8", s, r)
	}
}

func TestHitRatesBoundedProperty(t *testing.T) {
	m := Default()
	f := func(ws uint32, apu uint8, skewRaw uint8) bool {
		p := AccessProfile{
			AccessesPerUop:  float64(apu) / 255,
			WorkingSetBytes: float64(ws),
			ReuseSkew:       0.1 + 0.9*float64(skewRaw)/255,
		}
		l1, l2, err := m.HitRates(p)
		if err != nil {
			return false
		}
		return l1 >= 0 && l1 <= 1 && l2 >= 0 && l2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveLatencySaturation(t *testing.T) {
	m := Default()
	base := m.Config().BaseLatencyS
	if got := m.EffectiveLatency(0); got != base {
		t.Errorf("unloaded latency %v, want %v", got, base)
	}
	if got := m.EffectiveLatency(-5); got != base {
		t.Errorf("negative demand latency %v, want clamped to base", got)
	}
	half := m.EffectiveLatency(m.Config().BusPeakBytesPerS / 2)
	if math.Abs(half-2*base) > 1e-15 {
		t.Errorf("latency at 50%% utilization %v, want 2x base", half)
	}
	if !math.IsInf(m.EffectiveLatency(m.Config().BusPeakBytesPerS), 1) {
		t.Error("latency at saturation should be +Inf")
	}
	// Monotone below saturation.
	prev := 0.0
	for u := 0.0; u < 0.95; u += 0.05 {
		l := m.EffectiveLatency(u * m.Config().BusPeakBytesPerS)
		if l < prev {
			t.Fatalf("latency not monotone at utilization %v", u)
		}
		prev = l
	}
}

func TestBusBytes(t *testing.T) {
	m := Default()
	if got := m.BusBytesPerS(1e6); got != 64e6 {
		t.Errorf("BusBytesPerS = %v, want 64e6", got)
	}
}

// Package memhier models the platform's memory hierarchy — the L1 and
// L2 caches and the front-side bus behind the BUS_TRAN_MEM counter the
// paper's phase metric is built on.
//
// The phase framework itself only consumes bus transactions per uop;
// this package supplies the layer *beneath* that number: given an
// architecture-independent locality description of an execution
// interval (access rate, working set, reuse skew), it derives the L1
// and L2 hit rates, the resulting bus-transaction rate, and the
// bandwidth-dependent effective memory latency. It lets workloads be
// specified by what the program does (how much data it touches) rather
// than by the counter value directly, and closes the loop between
// working-set behavior and the Mem/Uop phases of the paper's Table 1.
//
// The hit-rate model is analytic: for a cache of capacity S serving a
// working set W accessed with reuse skew θ ∈ (0, 1], the hit
// probability is (S/W)^θ when W > S and ~1 otherwise. θ = 1 is
// uniform random access over the working set; smaller θ models the
// skewed reuse real programs exhibit (hot structures hit even when the
// working set exceeds the cache).
package memhier

import (
	"errors"
	"fmt"
	"math"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the capacity.
	SizeBytes float64
	// LineBytes is the block size.
	LineBytes float64
}

// Config describes the hierarchy.
type Config struct {
	// L1 and L2 are the data-side cache levels.
	L1 CacheConfig
	L2 CacheConfig
	// ColdMissRate is the floor miss ratio from compulsory misses and
	// conflict noise, applied per level.
	ColdMissRate float64
	// BusPeakBytesPerS is the front-side bus peak bandwidth.
	BusPeakBytesPerS float64
	// BaseLatencyS is the unloaded memory access latency.
	BaseLatencyS float64
}

// DefaultConfig returns a Pentium-M (Banias) class hierarchy: 32 KB
// L1D, 1 MB L2, 64 B lines, a 400 MT/s front-side bus (~3.2 GB/s), and
// ~90 ns unloaded latency.
func DefaultConfig() Config {
	return Config{
		L1:               CacheConfig{SizeBytes: 32 << 10, LineBytes: 64},
		L2:               CacheConfig{SizeBytes: 1 << 20, LineBytes: 64},
		ColdMissRate:     0.002,
		BusPeakBytesPerS: 3.2e9,
		BaseLatencyS:     90e-9,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	check := func(cc CacheConfig, name string) error {
		if !(cc.SizeBytes > 0) || !(cc.LineBytes > 0) || cc.LineBytes > cc.SizeBytes {
			return fmt.Errorf("memhier: invalid %s cache %+v", name, cc)
		}
		return nil
	}
	if err := check(c.L1, "L1"); err != nil {
		return err
	}
	if err := check(c.L2, "L2"); err != nil {
		return err
	}
	switch {
	case c.L2.SizeBytes < c.L1.SizeBytes:
		return errors.New("memhier: L2 smaller than L1")
	case c.ColdMissRate < 0 || c.ColdMissRate >= 1:
		return fmt.Errorf("memhier: cold miss rate %v outside [0,1)", c.ColdMissRate)
	case !(c.BusPeakBytesPerS > 0):
		return fmt.Errorf("memhier: bus bandwidth %v must be positive", c.BusPeakBytesPerS)
	case !(c.BaseLatencyS > 0):
		return fmt.Errorf("memhier: base latency %v must be positive", c.BaseLatencyS)
	}
	return nil
}

// AccessProfile describes an interval's memory behavior in program
// terms.
type AccessProfile struct {
	// AccessesPerUop is data-memory references per retired uop
	// (loads + stores; typically ~0.3-0.4).
	AccessesPerUop float64
	// WorkingSetBytes is the data footprint the interval cycles
	// through.
	WorkingSetBytes float64
	// ReuseSkew is θ: 1 = uniform access over the working set, lower
	// values = hotter subsets. Zero selects 1.
	ReuseSkew float64
	// SpatialRun is the average number of sequential accesses that
	// land on one cache line before moving on (spatial locality);
	// zero selects 1 (random single-word strides).
	SpatialRun float64
}

func (p AccessProfile) normalized() AccessProfile {
	if p.ReuseSkew == 0 {
		p.ReuseSkew = 1
	}
	if p.SpatialRun == 0 {
		p.SpatialRun = 1
	}
	return p
}

// Validate checks the profile.
func (p AccessProfile) Validate() error {
	switch {
	case !(p.AccessesPerUop >= 0) || math.IsInf(p.AccessesPerUop, 0):
		return fmt.Errorf("memhier: accesses/uop %v invalid", p.AccessesPerUop)
	case !(p.WorkingSetBytes >= 0) || math.IsInf(p.WorkingSetBytes, 0):
		return fmt.Errorf("memhier: working set %v invalid", p.WorkingSetBytes)
	case p.ReuseSkew < 0 || p.ReuseSkew > 1:
		return fmt.Errorf("memhier: reuse skew %v outside [0,1]", p.ReuseSkew)
	case p.SpatialRun < 0:
		return fmt.Errorf("memhier: spatial run %v negative", p.SpatialRun)
	}
	return nil
}

// Model derives counter-level behavior from locality profiles.
type Model struct {
	cfg Config
}

// New builds a model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Default returns a model with DefaultConfig.
func Default() *Model {
	m, err := New(DefaultConfig())
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model parameters.
func (m *Model) Config() Config { return m.cfg }

// hitRate is the analytic per-level hit probability.
func hitRate(sizeBytes, wsBytes, skew, coldMiss float64) float64 {
	if wsBytes <= sizeBytes {
		return 1 - coldMiss
	}
	h := math.Pow(sizeBytes/wsBytes, skew)
	if h > 1-coldMiss {
		h = 1 - coldMiss
	}
	return h
}

// HitRates returns the L1 hit rate and the local (given-L1-miss) L2
// hit rate for a profile.
func (m *Model) HitRates(p AccessProfile) (l1, l2 float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	p = p.normalized()
	h1 := hitRate(m.cfg.L1.SizeBytes, p.WorkingSetBytes, p.ReuseSkew, m.cfg.ColdMissRate)
	// Global L2 hit rate (fraction of all accesses satisfied at or
	// above L2), then condition on having missed L1. True compulsory
	// misses to memory are an order of magnitude rarer than the L1's
	// cold/conflict floor: most L1 floor misses still hit L2.
	g2 := hitRate(m.cfg.L2.SizeBytes, p.WorkingSetBytes, p.ReuseSkew, m.cfg.ColdMissRate/10)
	if g2 < h1 {
		g2 = h1
	}
	if h1 >= 1 {
		return 1, 1, nil
	}
	return h1, (g2 - h1) / (1 - h1), nil
}

// MemPerUop derives the paper's phase metric from a locality profile:
// bus transactions (L2 line misses) per retired uop. Spatial locality
// merges consecutive same-line accesses into one transaction.
func (m *Model) MemPerUop(p AccessProfile) (float64, error) {
	l1, l2, err := m.HitRates(p)
	if err != nil {
		return 0, err
	}
	p = p.normalized()
	missPerAccess := (1 - l1) * (1 - l2)
	return p.AccessesPerUop * missPerAccess / p.SpatialRun, nil
}

// EffectiveLatency returns the loaded memory latency at a demanded bus
// byte rate, with M/M/1-style queueing against the bus's peak
// bandwidth: latency grows as utilization approaches 1 and the model
// saturates (returns +Inf) at or beyond the peak.
func (m *Model) EffectiveLatency(busBytesPerS float64) float64 {
	if busBytesPerS < 0 {
		busBytesPerS = 0
	}
	u := busBytesPerS / m.cfg.BusPeakBytesPerS
	if u >= 1 {
		return math.Inf(1)
	}
	return m.cfg.BaseLatencyS / (1 - u)
}

// BusBytesPerS converts a bus-transaction rate into bus traffic using
// the L2 line size.
func (m *Model) BusBytesPerS(txPerS float64) float64 {
	return txPerS * m.cfg.L2.LineBytes
}

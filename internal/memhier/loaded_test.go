package memhier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoadedNoMemoryTraffic(t *testing.T) {
	m := Default()
	got, err := m.LoadedTimePerUop(1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TimePerUopS != 1e-9 || got.Utilization != 0 {
		t.Errorf("CPU-only loaded point = %+v", got)
	}
}

func TestLoadedSolvesFixedPoint(t *testing.T) {
	// The returned T must satisfy T = a + L/(1 − k/T) to numerical
	// precision.
	m := Default()
	cfg := m.Config()
	for _, tc := range []struct{ a, tx float64 }{
		{1e-9, 0.001},
		{0.5e-9, 0.03},
		{2e-9, 0.1},
		{1e-10, 0.25},
	} {
		got, err := m.LoadedTimePerUop(tc.a, tc.tx)
		if err != nil {
			t.Fatal(err)
		}
		l := tc.tx * cfg.BaseLatencyS
		k := tc.tx * cfg.L2.LineBytes / cfg.BusPeakBytesPerS
		rhs := tc.a + l/(1-k/got.TimePerUopS)
		if math.Abs(rhs-got.TimePerUopS)/got.TimePerUopS > 1e-9 {
			t.Errorf("a=%v tx=%v: T=%v but fixed point says %v", tc.a, tc.tx, got.TimePerUopS, rhs)
		}
		if got.Utilization < 0 || got.Utilization >= 1 {
			t.Errorf("utilization %v out of [0,1)", got.Utilization)
		}
		if got.EffectiveLatencyS < cfg.BaseLatencyS-1e-15 {
			t.Errorf("effective latency %v below unloaded %v", got.EffectiveLatencyS, cfg.BaseLatencyS)
		}
	}
}

func TestLoadedMonotoneInTraffic(t *testing.T) {
	m := Default()
	prevT, prevU := 0.0, 0.0
	for tx := 0.001; tx < 0.3; tx *= 1.5 {
		got, err := m.LoadedTimePerUop(1e-9, tx)
		if err != nil {
			t.Fatal(err)
		}
		if got.TimePerUopS < prevT || got.Utilization < prevU {
			t.Fatalf("not monotone at tx=%v: %+v", tx, got)
		}
		prevT, prevU = got.TimePerUopS, got.Utilization
	}
	// Heavy streaming approaches — but cannot exceed — the serialized
	// single-core ceiling k/(k+L): each miss holds the core for the
	// full latency but occupies the bus only for its transfer time.
	cfg := m.Config()
	k := cfg.L2.LineBytes / cfg.BusPeakBytesPerS
	ceiling := k / (k + cfg.BaseLatencyS)
	heavy, err := m.LoadedTimePerUop(1e-10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Utilization < 0.85*ceiling || heavy.Utilization > ceiling {
		t.Errorf("heavy streaming utilization %v, want just under ceiling %v", heavy.Utilization, ceiling)
	}
	// Queueing inflates latency by up to 1+k/L at that ceiling.
	if heavy.EffectiveLatencyS < 1.15*cfg.BaseLatencyS {
		t.Errorf("heavy streaming latency %v shows no queueing", heavy.EffectiveLatencyS)
	}
}

func TestLoadedNeverSaturatesProperty(t *testing.T) {
	m := Default()
	f := func(aRaw, txRaw uint16) bool {
		a := 1e-11 + float64(aRaw)*1e-12
		tx := float64(txRaw) / 65535 * 0.5
		got, err := m.LoadedTimePerUop(a, tx)
		if err != nil {
			return false
		}
		return got.Utilization >= 0 && got.Utilization < 1 &&
			got.TimePerUopS >= a && !math.IsNaN(got.TimePerUopS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadedValidation(t *testing.T) {
	m := Default()
	if _, err := m.LoadedTimePerUop(0, 0.01); err == nil {
		t.Error("zero compute time accepted")
	}
	if _, err := m.LoadedTimePerUop(1e-9, -1); err == nil {
		t.Error("negative traffic accepted")
	}
	if _, err := m.LoadedTimePerUop(math.Inf(1), 0.01); err == nil {
		t.Error("infinite compute time accepted")
	}
}

package memhier

import (
	"fmt"
	"math"
)

// Loaded describes the self-consistent operating point of a core
// driving the shared bus: memory latency depends on bus utilization,
// utilization depends on execution rate, and execution rate depends on
// latency. LoadedTimePerUop solves that fixed point in closed form.
type Loaded struct {
	// TimePerUopS is the converged execution time per uop.
	TimePerUopS float64
	// Utilization is the bus utilization in [0, 1).
	Utilization float64
	// EffectiveLatencyS is the queue-inflated per-transaction latency.
	EffectiveLatencyS float64
}

// LoadedTimePerUop computes the steady-state per-uop execution time
// for code with the given compute time per uop (seconds) and bus
// transactions per uop, against this hierarchy's bus.
//
// With a = compute s/uop, L = unloaded memory s/uop, and k = bus
// service s/uop (transactions × line bytes / peak bandwidth), the
// M/M/1-loaded time satisfies T = a + L/(1 − k/T), whose physical root
// is
//
//	T = ((a+k+L) + sqrt((a+k+L)² − 4ak)) / 2.
//
// The discriminant is always non-negative and the root satisfies
// T ≥ max(a, k), so utilization k/T stays below 1. With serialized
// misses a single core is further bounded by k/(k+L) — each miss
// occupies the core for the full latency L but the bus only for its
// transfer time k — so one core cannot saturate the bus alone; real
// saturation needs memory-level parallelism or multiple cores, which
// is what the Config.BusPeakBytesPerS headroom represents.
func (m *Model) LoadedTimePerUop(computeSPerUop, txPerUop float64) (Loaded, error) {
	if !(computeSPerUop > 0) || math.IsInf(computeSPerUop, 0) {
		return Loaded{}, fmt.Errorf("memhier: compute time %v must be positive", computeSPerUop)
	}
	if txPerUop < 0 || math.IsNaN(txPerUop) || math.IsInf(txPerUop, 0) {
		return Loaded{}, fmt.Errorf("memhier: transactions/uop %v invalid", txPerUop)
	}
	a := computeSPerUop
	if txPerUop == 0 {
		return Loaded{TimePerUopS: a, Utilization: 0, EffectiveLatencyS: m.cfg.BaseLatencyS}, nil
	}
	l := txPerUop * m.cfg.BaseLatencyS
	k := txPerUop * m.cfg.L2.LineBytes / m.cfg.BusPeakBytesPerS

	sum := a + k + l
	disc := sum*sum - 4*a*k
	t := (sum + math.Sqrt(disc)) / 2
	util := k / t
	eff := (t - a) / txPerUop
	return Loaded{TimePerUopS: t, Utilization: util, EffectiveLatencyS: eff}, nil
}

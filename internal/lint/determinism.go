package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package entry points that read or depend
// on the wall clock. Pure conversions and constructors (time.Duration,
// time.Unix, time.Date, ...) are fine in simulation code.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandAllowed are the math/rand names that do NOT touch the
// package-global source: constructors and type names used to thread an
// explicitly seeded generator.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

// outputFuncs are the fmt entry points whose call inside a map
// iteration makes output order depend on map iteration order.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

// DeterminismAnalyzer forbids nondeterminism sources in the simulated
// substrate: wall-clock reads, the global math/rand source, and output
// emitted during map iteration. The substrate must be bit-deterministic
// so that a seed fully reproduces every phase sequence, GPHT accuracy
// figure, and energy total; these three are the ways reproductions
// quietly stop reproducing.
//
// Live-path code that legitimately reads the clock carries a
// //lint:wallclock directive; sorted-output code that must iterate a
// map uses //lint:maporder.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/math-rand-global/map-order-dependent output " +
		"in simulation packages",
	Run:   runDeterminism,
	Match: matchPaths(simulationPackages),
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterminismSelector(pass, n)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDeterminismSelector(pass *Pass, sel *ast.SelectorExpr) {
	name := sel.Sel.Name
	switch {
	case isPkgIdent(pass.TypesInfo, sel.X, "time") && wallclockFuncs[name]:
		if !pass.Suppressed("wallclock", sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation code must be "+
					"deterministic (inject a clock, or annotate a live path "+
					"with //lint:wallclock)", name)
		}
	case isRandPkg(pass.TypesInfo, sel.X) && !globalRandAllowed[name]:
		// Only package-level functions draw from the global source;
		// methods on a threaded *rand.Rand arrive as selectors on a
		// variable, not on the package name, and never reach here.
		if !pass.Suppressed("rand", sel.Pos()) {
			pass.Reportf(sel.Pos(),
				"rand.%s uses the global math/rand source; thread a seeded "+
					"*rand.Rand so runs are reproducible", name)
		}
	}
}

func isRandPkg(info *types.Info, expr ast.Expr) bool {
	return isPkgIdent(info, expr, "math/rand") || isPkgIdent(info, expr, "math/rand/v2")
}

// checkMapRangeOutput flags fmt output emitted while ranging over a
// map: the emission order then follows Go's randomized map iteration.
func checkMapRangeOutput(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isPkgIdent(pass.TypesInfo, sel.X, "fmt") || !outputFuncs[sel.Sel.Name] {
			return true
		}
		if !pass.Suppressed("maporder", call.Pos()) && !pass.Suppressed("maporder", rng.Pos()) {
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration emits in nondeterministic order; "+
					"sort the keys first (//lint:maporder to override)", sel.Sel.Name)
		}
		return true
	})
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
)

// TestRepoIsLintClean runs the full analyzer suite over the module the
// way cmd/phasemonlint does and requires zero findings: the codebase
// must satisfy its own invariants. This is the test-suite form of the
// acceptance gate `go run ./cmd/phasemonlint ./...` exiting 0.
func TestRepoIsLintClean(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	for _, pkg := range pkgs {
		for _, a := range lint.All() {
			if a.Match != nil && !a.Match(pkg.PkgPath) {
				continue
			}
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
}

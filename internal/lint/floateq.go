package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer forbids == and != between floating-point operands.
// The Mem/Uop class boundaries of the paper's Table 1 are float64
// thresholds (0.005, 0.010, ...); two values that are semantically
// equal but went through different arithmetic compare unequal, which
// misbins the sample and silently shifts every downstream table.
// Comparisons belong to phase.ApproxEqual (or an explicit tolerance).
//
// Two escapes: comparing against the exact literal 0 is allowed — the
// sentinel-default idiom ("zero means unset") assigns and tests the
// same bit pattern — and //lint:floateq suppresses a finding where
// exact comparison is the point (e.g. inside ApproxEqual itself).
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point values in phase-binning and " +
		"threshold code; use phase.ApproxEqual",
	Run:   runFloatEq,
	Match: matchPaths(simulationPackages),
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(pass.TypesInfo, bin.X) && !isFloatOperand(pass.TypesInfo, bin.Y) {
				return true
			}
			if isZeroLiteral(pass.TypesInfo, bin.X) || isZeroLiteral(pass.TypesInfo, bin.Y) {
				return true
			}
			if constOperand(pass.TypesInfo, bin.X) && constOperand(pass.TypesInfo, bin.Y) {
				return true // compile-time constant fold, exact by definition
			}
			if !pass.Suppressed("floateq", bin.Pos()) {
				pass.Reportf(bin.OpPos,
					"floating-point %s comparison; use phase.ApproxEqual or an "+
						"explicit tolerance (//lint:floateq if exactness is intended)",
					bin.Op)
			}
			return true
		})
	}
	return nil
}

// isFloatOperand reports whether the expression's type is (or is named
// over) a floating-point type.
func isFloatOperand(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroLiteral reports whether the expression is a constant equal to
// exactly zero. Zero is the one float every sentinel assignment stores
// bit-exactly, so comparing against it is well defined.
func isZeroLiteral(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	kind := tv.Value.Kind()
	return (kind == constant.Int || kind == constant.Float) && constant.Sign(tv.Value) == 0
}

func constOperand(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// Package lint implements phasemonlint: a suite of custom static
// analyzers enforcing the invariants this reproduction's results rest
// on but that the Go compiler cannot see —
//
//   - determinism: the simulated substrate must be bit-deterministic,
//     so GPHT accuracy and the energy tables reproduce exactly; no
//     wall-clock reads, no global math/rand source, no output whose
//     order depends on map iteration.
//   - nilhub: telemetry is optional by contract (a nil *telemetry.Hub
//     means "unobserved"), so every component holding a hub must guard
//     it before touching it, and instrument state must be atomic.
//   - floateq: Mem/Uop class boundaries (the paper's Table 1) are
//     float64 thresholds; comparing them with == silently misbins
//     samples that went through different arithmetic.
//   - exhaustive: switches over the phase taxonomy and DVFS settings
//     (Tables 1 and 2) must cover every declared constant or reject
//     unknown values explicitly, so a new bin can never fall through.
//   - guarded: struct fields annotated `// guarded by mu` (or
//     `// guarded by Type.mu` for a foreign owner) may only be read or
//     written while that mutex is held — RLock suffices for reads;
//     copy-out-under-lock and *Locked-suffix callees are understood.
//   - hotalloc: functions annotated //lint:hotpath must be statically
//     allocation-free through their intra-package call graph; error
//     and grow-on-demand branches are recognized as cold.
//   - deadline: conn Read/Write in the serving packages must be
//     dominated by the matching SetRead/SetWriteDeadline in the same
//     function or all of its callers.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library so the module stays dependency-free; porting an analyzer to
// the upstream framework is a mechanical change of import paths.
//
// Escape hatches are line-scoped comment directives — //lint:<name>
// (e.g. //lint:wallclock, //lint:floateq, //lint:guarded; commas
// combine several) suppresses the corresponding finding on its own
// line or the line below. //lint:hotpath is not an escape hatch: it
// marks a hotalloc root. The suppression policy per package is part
// of the repo gate: internal/agg, internal/wire, and internal/phased
// admit no guarded/hotalloc/deadline suppressions at all (see
// TestNoEscapeHatchesInHotPackages and DESIGN.md §13).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers
	// selections.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run executes the analyzer on one package, reporting findings
	// through pass.Report.
	Run func(*Pass) error
	// Match restricts which import paths the driver applies the
	// analyzer to; nil applies it everywhere. Tests bypass Match and
	// invoke Run directly.
	Match func(pkgPath string) bool
}

// A Pass provides one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	// directives is the lazily built filename -> line -> directive
	// names index of //lint: comments.
	directives map[string]map[int][]string
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a //lint:<name> directive is attached to
// the line containing pos or the line immediately above it.
func (p *Pass) Suppressed(name string, pos token.Pos) bool {
	if p.directives == nil {
		p.directives = buildDirectives(p.Fset, p.Files)
	}
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[line] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// buildDirectives indexes every //lint: comment by file and line.
func buildDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := directiveNames(c.Text)
				if len(names) == 0 {
					continue
				}
				position := fset.Position(c.Pos())
				if out[position.Filename] == nil {
					out[position.Filename] = make(map[int][]string)
				}
				out[position.Filename][position.Line] =
					append(out[position.Filename][position.Line], names...)
			}
		}
	}
	return out
}

// directiveNames parses the analyzer names out of one //lint: comment.
// The directive head is everything up to the first whitespace; commas
// separate multiple analyzer names (`//lint:guarded,hotalloc reason`),
// and empty segments are dropped. Comments not starting with //lint:
// yield nil. Carriage returns (CRLF sources) are treated as
// whitespace.
func directiveNames(text string) []string {
	rest, ok := strings.CutPrefix(text, "//lint:")
	if !ok {
		return nil
	}
	head := rest
	if i := strings.IndexFunc(rest, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\r' || r == '\n'
	}); i >= 0 {
		head = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(head, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// RunAnalyzer applies one analyzer to one loaded package and returns
// its findings sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// isPkgIdent reports whether expr is an identifier naming an imported
// package with the given import path, e.g. the "time" in time.Now.
func isPkgIdent(info *types.Info, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// namedFrom unwraps pointers and returns the named type and its
// defining package/type names, or ok=false for unnamed types.
func namedFrom(t types.Type) (pkgName, typeName string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Name(), named.Obj().Name(), true
}

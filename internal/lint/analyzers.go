package lint

import "strings"

// simulationPackages are the deterministic simulated substrate: the
// packages whose output must be a pure function of configuration and
// seed, because every paper table is derived from them. The live
// paths (perfevent, cpufreq, pmc, the cmd/ front ends) legitimately
// read clocks and are outside this set.
var simulationPackages = []string{
	"internal/agg",
	"internal/cpusim",
	"internal/core",
	"internal/daq",
	"internal/dvfs",
	"internal/governor",
	"internal/kernelsim",
	"internal/machine",
	"internal/memhier",
	"internal/phase",
	"internal/power",
	"internal/stats",
	"internal/thermal",
	"internal/tournament",
	"internal/trace",
	"internal/wcache",
	"internal/workload",
}

// matchPaths returns a Match function accepting packages whose import
// path ends with one of the given suffixes.
func matchPaths(suffixes []string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}

// All returns the phasemonlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NilHubAnalyzer,
		FloatEqAnalyzer,
		ExhaustiveAnalyzer,
		GuardedAnalyzer,
		HotAllocAnalyzer,
		DeadlineAnalyzer,
	}
}

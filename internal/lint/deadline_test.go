package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestDeadline(t *testing.T) {
	linttest.Run(t, "testdata", lint.DeadlineAnalyzer,
		"deadline", "deadline_clean")
}

package lint

import (
	"go/ast"
	"go/types"
)

// NilHubAnalyzer enforces the telemetry wiring contract introduced in
// PR 1: observation is optional, a nil *telemetry.Hub means
// "unobserved", and the hot paths pay exactly one predictable branch
// for it. Three checks:
//
//  1. guarded use — in any method of a type that (directly or through
//     a config struct) holds a *telemetry.Hub, every dereference of
//     the hub (field access or method call) must be dominated by a nil
//     check of the same expression: an enclosing `if hub != nil`, a
//     short-circuit `hub != nil && ...`, or a preceding
//     `if hub == nil { return }` early exit.
//  2. one-branch contract — inside package telemetry, every exported
//     pointer-receiver method on a struct instrument must guard its
//     receiver the same way before touching it, so calling any
//     instrument through nil stays a no-op instead of a panic.
//  3. atomic state — instrument structs (Counter, Gauge, Histogram,
//     Hub, and anything holding sync/atomic fields) may carry mutable
//     numeric state only in sync/atomic types; plain integer/float
//     fields are flagged unless annotated //lint:immutable (set once
//     before publication, e.g. Hub.numPhases).
var NilHubAnalyzer = &Analyzer{
	Name: "nilhub",
	Doc: "telemetry hubs must be nil-guarded at use sites, instrument " +
		"methods nil-safe, and instrument state atomic",
	Run: runNilHub,
}

func runNilHub(pass *Pass) error {
	inTelemetry := pass.Pkg.Name() == "telemetry"
	for _, file := range pass.Files {
		parents := buildParents(file)
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Recv != nil && decl.Body != nil {
					checkHubUses(pass, decl, parents)
					if inTelemetry {
						checkReceiverContract(pass, decl, parents)
					}
				}
			case *ast.GenDecl:
				if inTelemetry {
					checkAtomicFields(pass, decl)
				}
			}
		}
	}
	return nil
}

// --- check 1: guarded hub use in methods ---------------------------

func checkHubUses(pass *Pass, fn *ast.FuncDecl, parents map[ast.Node]ast.Node) {
	recvName := receiverName(fn)
	// Methods on Hub itself are governed by the one-branch contract
	// (check 2); their receiver is the hub.
	recvIsHub := false
	if len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		if obj, ok := pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]; ok && obj != nil {
			recvIsHub = isHubPointer(obj.Type())
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !isHubPointer(tv.Type) {
			return true
		}
		chain := chainString(sel.X)
		if recvIsHub && chain == recvName {
			return true
		}
		if chain == "" {
			pass.Reportf(sel.Pos(),
				"*telemetry.Hub reached through a non-trivial expression; "+
					"store it in a local and nil-check it before use")
			return true
		}
		if !guarded(sel.X, chain, parents) {
			pass.Reportf(sel.Pos(),
				"%s.%s dereferences a *telemetry.Hub without a dominating "+
					"nil check; guard with `if %s != nil` (telemetry is optional "+
					"by contract)", chain, sel.Sel.Name, chain)
		}
		return true
	})
}

// --- check 2: nil-safe exported instrument methods -----------------

func checkReceiverContract(pass *Pass, fn *ast.FuncDecl, parents map[ast.Node]ast.Node) {
	if !fn.Name.IsExported() || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	recvIdent := fn.Recv.List[0].Names[0]
	recvObj := pass.TypesInfo.Defs[recvIdent]
	if recvObj == nil || !isPointerToStruct(recvObj.Type()) {
		return
	}
	name := recvIdent.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recvObj {
			return true
		}
		if !isDereference(pass, id, parents) {
			return true // nil comparisons, passing the pointer on, etc.
		}
		if !guarded(id, name, parents) {
			pass.Reportf(id.Pos(),
				"exported method %s dereferences receiver %s without a nil "+
					"check; instruments promise to be no-ops on nil receivers",
				fn.Name.Name, name)
		}
		return true
	})
}

// isDereference reports whether the identifier use actually commits to
// a non-nil pointer: a field selection, an index, or an explicit
// *deref. Calling a method through the receiver is NOT a dereference
// here — by this very contract, every exported instrument method is
// nil-safe, so the call is legal; the callee is checked on its own.
func isDereference(pass *Pass, id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	switch p := parents[id].(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return false
		}
		if sel, ok := pass.TypesInfo.Selections[p]; ok && sel.Kind() == types.MethodVal {
			return false
		}
		return true
	case *ast.StarExpr:
		return p.X == ast.Expr(id)
	case *ast.IndexExpr:
		return p.X == ast.Expr(id)
	}
	return false
}

// --- check 3: atomic-only instrument state -------------------------

// instrumentTypeNames are the telemetry structs whose mutable numeric
// state must live in sync/atomic types even if they currently hold no
// atomic field.
var instrumentTypeNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Hub": true,
}

func checkAtomicFields(pass *Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		if !instrumentTypeNames[ts.Name.Name] && !hasAtomicField(pass, st) {
			continue
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil || !isPlainNumeric(obj.Type()) {
					continue
				}
				if pass.Suppressed("immutable", name.Pos()) {
					continue
				}
				pass.Reportf(name.Pos(),
					"instrument field %s.%s is plain %s; counters shared with "+
						"readers must use sync/atomic (//lint:immutable for "+
						"set-once configuration)",
					ts.Name.Name, name.Name, obj.Type())
			}
		}
	}
}

func hasAtomicField(pass *Pass, st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && containsAtomic(obj.Type()) {
				return true
			}
		}
	}
	return false
}

// containsAtomic reports whether t is a sync/atomic type or a
// slice/array of one.
func containsAtomic(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		return containsAtomic(t.Elem())
	case *types.Array:
		return containsAtomic(t.Elem())
	}
	pkg, _, ok := namedFrom(t)
	return ok && pkg == "atomic"
}

func isPlainNumeric(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsNumeric != 0
}

// --- shared machinery ----------------------------------------------

func receiverName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

func isHubPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	pkg, name, ok := namedFrom(ptr.Elem())
	return ok && pkg == "telemetry" && name == "Hub"
}

func isPointerToStruct(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	_, isStruct := ptr.Elem().Underlying().(*types.Struct)
	return isStruct
}

// buildParents records each node's syntactic parent within one file.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// chainString renders an ident or ident.field... chain, or "" for
// anything more complex (calls, indexing), which cannot be matched
// against a guard syntactically.
func chainString(expr ast.Expr) string {
	switch expr := expr.(type) {
	case *ast.Ident:
		return expr.Name
	case *ast.SelectorExpr:
		base := chainString(expr.X)
		if base == "" {
			return ""
		}
		return base + "." + expr.Sel.Name
	case *ast.ParenExpr:
		return chainString(expr.X)
	}
	return ""
}

// guarded reports whether the use of chain (at node `use`) is
// dominated by a nil check, by walking the ancestor chain:
//
//   - inside the body of `if chain != nil` (as an &&-conjunct),
//   - inside the else of `if chain == nil` (as an ||-disjunct),
//   - right operand of `chain != nil && ...` / `chain == nil || ...`,
//   - preceded, in any enclosing block, by `if chain == nil { return }`
//     (or panic/branch) — the early-exit idiom.
func guarded(use ast.Node, chain string, parents map[ast.Node]ast.Node) bool {
	for cur := use; cur != nil; cur = parents[cur] {
		switch p := parents[cur].(type) {
		case *ast.IfStmt:
			if cur == ast.Node(p.Body) && hasNonNilConjunct(p.Cond, chain) {
				return true
			}
			if cur == p.Else && hasNilDisjunct(p.Cond, chain) {
				return true
			}
		case *ast.BinaryExpr:
			if cur == ast.Node(p.Y) {
				if p.Op.String() == "&&" && hasNonNilConjunct(p.X, chain) {
					return true
				}
				if p.Op.String() == "||" && hasNilDisjunct(p.X, chain) {
					return true
				}
			}
		case *ast.BlockStmt:
			if stmt, ok := cur.(ast.Stmt); ok && earlyExitBefore(p, stmt, chain) {
				return true
			}
		case *ast.FuncDecl:
			return false
			// Note: the walk deliberately crosses *ast.FuncLit
			// boundaries — a nil check dominating the closure's creation
			// dominates its body too, since the guarded expression is a
			// receiver or field that does not change under the closure.
		}
	}
	return false
}

// hasNonNilConjunct reports whether cond guarantees chain != nil when
// cond is true: it is `chain != nil` or an && conjunction containing
// it.
func hasNonNilConjunct(cond ast.Expr, chain string) bool {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch cond.Op.String() {
		case "&&":
			return hasNonNilConjunct(cond.X, chain) || hasNonNilConjunct(cond.Y, chain)
		case "!=":
			return nilComparison(cond, chain)
		}
	}
	return false
}

// hasNilDisjunct reports whether cond being false guarantees
// chain != nil: it is `chain == nil` or an || disjunction containing
// it.
func hasNilDisjunct(cond ast.Expr, chain string) bool {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch cond.Op.String() {
		case "||":
			return hasNilDisjunct(cond.X, chain) || hasNilDisjunct(cond.Y, chain)
		case "==":
			return nilComparison(cond, chain)
		}
	}
	return false
}

// nilComparison reports whether bin compares chain against nil.
func nilComparison(bin *ast.BinaryExpr, chain string) bool {
	x, y := chainString(bin.X), chainString(bin.Y)
	return (x == chain && y == "nil") || (y == chain && x == "nil")
}

// earlyExitBefore reports whether a statement preceding `at` in block
// is `if chain == nil { ...exit }` where the body cannot fall through.
func earlyExitBefore(block *ast.BlockStmt, at ast.Stmt, chain string) bool {
	for _, stmt := range block.List {
		if stmt == at {
			return false
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || ifStmt.Else != nil {
			continue
		}
		if hasNilDisjunct(ifStmt.Cond, chain) && terminates(ifStmt.Body) {
			return true
		}
	}
	return false
}

// terminates reports whether a block's last statement leaves the
// enclosing scope: return, panic, or a branch statement.
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

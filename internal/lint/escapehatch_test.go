package lint

import (
	"testing"
)

// TestNoEscapeHatchesInHotPackages pins the concurrency and hot-path
// analyzers to zero suppressions in the packages whose invariants they
// exist to protect: the aggregation pipeline, the wire codec, and the
// serving loop must *satisfy* guarded/hotalloc/deadline, not opt out
// of them. A suppression anywhere else is reviewable case by case; in
// these packages it is a regression by definition. Note //lint:hotpath
// is an annotation (it marks a root for hotalloc to check), not an
// escape hatch, so it is deliberately absent from the banned set.
func TestNoEscapeHatchesInHotPackages(t *testing.T) {
	banned := map[string]bool{
		GuardedAnalyzer.Name:  true,
		HotAllocAnalyzer.Name: true,
		DeadlineAnalyzer.Name: true,
	}
	pkgs, err := Load("../..", "./internal/agg", "./internal/wire", "./internal/phased")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("Load returned %d packages, want 3", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, name := range directiveNames(c.Text) {
						if banned[name] {
							t.Errorf("%s: escape hatch //lint:%s is not allowed in %s",
								pkg.Fset.Position(c.Pos()), name, pkg.PkgPath)
						}
					}
				}
			}
		}
	}
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestFloatEq(t *testing.T) {
	linttest.Run(t, "testdata", lint.FloatEqAnalyzer,
		"floateq", "floateq_clean")
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, an
// arbitrary directory inside the target module), type-checks their
// non-test sources, and returns them sorted by import path.
//
// Dependencies — including this module's own packages and the standard
// library — are resolved from compiler export data produced by
// `go list -export`, so loading is self-contained: no network, no
// GOPATH, no third-party driver. Only the pattern-matched packages
// themselves are parsed to syntax, which is what the analyzers need.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// goList runs `go list -e -export -deps -json` and decodes the
// package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// checkPackage parses and type-checks one target package.
func checkPackage(fset *token.FileSet, imp types.Importer, p listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		PkgPath:   p.ImportPath,
		Dir:       p.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo allocates the full set of type-checker result maps the
// analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Package linttest runs lint analyzers against fixture packages under
// a testdata directory, checking reported diagnostics against
// analysistest-style expectations: a comment
//
//	// want "regexp" "another regexp"
//
// on a line declares that the analyzer must report diagnostics
// matching each regexp on that line, and may report nothing else.
//
// Fixtures live under <testdata>/src/<pkg>/...; a fixture may import
// sibling fixture packages by their path relative to src (used to
// model internal/telemetry, internal/phase, ... without depending on
// the real packages), and any standard-library package, which is
// type-checked from GOROOT source so no pre-built export data is
// needed.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"phasemon/internal/lint"
)

// Run applies the analyzer to each named fixture package and compares
// diagnostics with the fixtures' want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	ld := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	for _, name := range fixtures {
		runOne(t, ld, a, name)
	}
}

func runOne(t *testing.T, ld *loader, a *lint.Analyzer, fixture string) {
	t.Helper()
	pkg, err := ld.load(fixture)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, fixture, err)
	}

	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: running on %s: %v", a.Name, fixture, err)
	}

	wants := collectWants(t, ld.fset, pkg.files)
	matchDiagnostics(t, ld.fset, a.Name, fixture, diags, wants)
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// collectWants extracts the want expectations from fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted returns the top-level double- or back-quoted string
// literals in s, in Go literal syntax ready for strconv.Unquote.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		quote := s[start]
		rest := s[start+1:]
		end := 0
		for end < len(rest) {
			if quote == '"' && rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == quote {
				break
			}
			end++
		}
		if end >= len(rest) {
			return out
		}
		out = append(out, s[start:start+end+2])
		s = rest[end+1:]
	}
}

func matchDiagnostics(t *testing.T, fset *token.FileSet, analyzer, fixture string, diags []lint.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s: %s", analyzer, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s: no diagnostic at %s:%d matching %q",
				analyzer, fixture, w.file, w.line, w.pattern)
		}
	}
}

// --- fixture loading -----------------------------------------------

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	src  string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
	// loading guards against fixture import cycles.
	loading []string
}

// Import resolves fixture-relative paths first, then the standard
// library, so the loader can serve as the type-checker's importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.src, path)) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	for _, p := range ld.loading {
		if p == path {
			return nil, fmt.Errorf("fixture import cycle through %s", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return ld.fset.Position(files[i].Pos()).Filename < ld.fset.Position(files[j].Pos()).Filename
	})

	info := lint.NewTypesInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestNilHub(t *testing.T) {
	linttest.Run(t, "testdata", lint.NilHubAnalyzer,
		"nilhub", "nilhub_clean", "nilhub_contract")
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestGuarded(t *testing.T) {
	linttest.Run(t, "testdata", lint.GuardedAnalyzer,
		"guarded", "guarded_clean")
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", lint.DeterminismAnalyzer,
		"determinism", "determinism_clean")
}

// Fixture: comparison idioms the floateq analyzer must accept.
package floateqclean

import "math"

const tol = 1e-12

// approxEqual is the sanctioned tolerance comparison.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func ordering(a, b float64) bool {
	return a < b || a > b // ordering comparisons are exact and fine
}

func ints(a, b int) bool {
	return a == b // integer equality is not the analyzer's business
}

// Fixture: every nondeterminism source the determinism analyzer must
// flag, plus the //lint:wallclock escape hatch.
package determinism

import (
	"fmt"
	"math/rand"
	"time"
)

func wallclock() time.Time {
	start := time.Now()          // want `time.Now reads the wall clock`
	_ = time.Since(start)        // want `time.Since reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return start
}

func allowedWallclock() time.Time {
	return time.Now() //lint:wallclock live-path timestamp
}

func globalRand() float64 {
	n := rand.Intn(6) // want `rand.Intn uses the global math/rand source`
	_ = n
	rand.Seed(42)         // want `rand.Seed uses the global math/rand source`
	return rand.Float64() // want `rand.Float64 uses the global math/rand source`
}

func mapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside map iteration`
	}
}

// Fixture: guarded-field access patterns the guarded analyzer must
// accept.
package guardedclean

import "sync"

type box struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

func (b *box) inc() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// copyOut snapshots under the lock and publishes after the unlock —
// the copy-before-unlock discipline the analyzer encodes.
func (b *box) copyOut() []int {
	b.mu.Lock()
	out := make([]int, 0, len(b.m))
	for _, v := range b.m {
		out = append(out, v)
	}
	b.mu.Unlock()
	sink(out)
	return out
}

func sink([]int) {}

// earlyReturn releases on both paths; accesses stay inside the held
// region of each.
func (b *box) earlyReturn(c bool) int {
	b.mu.Lock()
	if c {
		n := b.n
		b.mu.Unlock()
		return n
	}
	n := b.n * 2
	b.mu.Unlock()
	return n
}

// incLocked follows the *Locked naming convention: the caller holds
// b.mu.
func (b *box) incLocked() { b.n++ }

// newBox touches guarded fields of a value no other goroutine can see
// yet.
func newBox() *box {
	b := &box{m: make(map[string]int)}
	b.n = 1
	b.m["seed"] = 1
	return b
}

type rw struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

func (r *rw) write(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

type keeper struct {
	mu sync.Mutex
}

type entry struct {
	val int // guarded by keeper.mu
}

// update holds the foreign owner's mutex named by the annotation.
func update(k *keeper, e *entry) {
	k.mu.Lock()
	defer k.mu.Unlock()
	e.val = 7
}

// blessed documents a deliberate unguarded read via the escape hatch.
func (b *box) blessed() int {
	return b.n //lint:guarded racy snapshot is acceptable here
}

// Fixture: deterministic idioms the determinism analyzer must accept.
package determinismclean

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// seeded threads an explicitly seeded generator: the only sanctioned
// way to use math/rand in simulation code.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() + rng.NormFloat64()
}

// durations uses time only for unit arithmetic, never the clock.
func durations(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// sortedOutput emits map contents in sorted key order.
func sortedOutput(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// annotated documents an intentionally unordered dump.
func annotated(m map[string]int) {
	for k := range m { //lint:maporder debug dump, order irrelevant
		fmt.Println(k)
	}
}

// Fixture: switch forms the exhaustive analyzer must accept.
package exhaustiveclean

import (
	"errors"

	"exhaustive/dvfs"
	"exhaustive/phase"
)

// full covers every declared constant; no default needed.
func full(c phase.Class) int {
	switch c {
	case phase.ClassUnknown:
		return -1
	case phase.ClassCPUBound:
		return 1
	case phase.ClassBalanced:
		return 3
	case phase.ClassMemoryBound:
		return 6
	}
	return 0
}

// partialWithRejectingDefault handles unknowns explicitly.
func partialWithRejectingDefault(s dvfs.Setting) (int, error) {
	switch s {
	case dvfs.SpeedStepFast:
		return 0, nil
	default:
		return 0, errors.New("unhandled setting")
	}
}

// otherEnum is not in the enforced set; partial coverage is fine.
type weekday int

const (
	monday weekday = iota
	tuesday
)

func otherEnum(d weekday) bool {
	switch d {
	case monday:
		return true
	}
	return false
}

// dynamicCase makes coverage undecidable; the analyzer stays silent.
func dynamicCase(c, threshold phase.Class) bool {
	switch c {
	case threshold:
		return true
	}
	return false
}

// Fixture: switch forms the exhaustive analyzer must accept.
package exhaustiveclean

import (
	"errors"

	"exhaustive/agg"
	"exhaustive/dvfs"
	"exhaustive/fleet"
	"exhaustive/lint"
	"exhaustive/phase"
	"exhaustive/phased"
	"exhaustive/wire"
)

// full covers every declared constant; no default needed.
func full(c phase.Class) int {
	switch c {
	case phase.ClassUnknown:
		return -1
	case phase.ClassCPUBound:
		return 1
	case phase.ClassBalanced:
		return 3
	case phase.ClassMemoryBound:
		return 6
	}
	return 0
}

// partialWithRejectingDefault handles unknowns explicitly.
func partialWithRejectingDefault(s dvfs.Setting) (int, error) {
	switch s {
	case dvfs.SpeedStepFast:
		return 0, nil
	default:
		return 0, errors.New("unhandled setting")
	}
}

// fullStatus covers every fleet run status; no default needed.
func fullStatus(s fleet.Status) string {
	switch s {
	case fleet.StatusOK:
		return "ok"
	case fleet.StatusCached:
		return "cached"
	case fleet.StatusFailed:
		return "failed"
	case fleet.StatusCanceled:
		return "canceled"
	}
	return "unknown"
}

// partialStatusWithDefault rejects unknown statuses explicitly.
func partialStatusWithDefault(s fleet.Status) (bool, error) {
	switch s {
	case fleet.StatusOK, fleet.StatusCached:
		return true, nil
	default:
		return false, errors.New("run did not succeed")
	}
}

// fullFrameKind covers every wire frame kind; no default needed.
func fullFrameKind(k wire.FrameKind) string {
	switch k {
	case wire.KindInvalid:
		return "invalid"
	case wire.KindHello:
		return "hello"
	case wire.KindAck:
		return "ack"
	case wire.KindSample:
		return "sample"
	case wire.KindPrediction:
		return "prediction"
	case wire.KindDrain:
		return "drain"
	case wire.KindError:
		return "error"
	case wire.KindRollup:
		return "rollup"
	case wire.KindSnapshot:
		return "snapshot"
	case wire.KindRestore:
		return "restore"
	case wire.KindBatch:
		return "batch"
	}
	return "unknown"
}

// fullOutcome covers every rollup outcome; no default needed.
func fullOutcome(o agg.Outcome) string {
	switch o {
	case agg.OutcomeUnscored:
		return "unscored"
	case agg.OutcomeHit:
		return "hit"
	case agg.OutcomeMiss:
		return "miss"
	case agg.OutcomeShed:
		return "shed"
	}
	return "unknown"
}

// partialOutcomeWithDefault rejects unknown outcomes explicitly.
func partialOutcomeWithDefault(o agg.Outcome) (bool, error) {
	switch o {
	case agg.OutcomeHit:
		return true, nil
	default:
		return false, errors.New("not a hit")
	}
}

// partialStateWithDefault rejects unknown session states explicitly.
func partialStateWithDefault(s phased.SessionState) (bool, error) {
	switch s {
	case phased.StateOpen, phased.StateDraining:
		return true, nil
	default:
		return false, errors.New("session not serving")
	}
}

// fullLockMode covers every lock mode; no default needed.
func fullLockMode(m lint.LockMode) string {
	switch m {
	case lint.LockModeRead:
		return "read"
	case lint.LockModeWrite:
		return "write"
	}
	return "unknown"
}

// otherEnum is not in the enforced set; partial coverage is fine.
type weekday int

const (
	monday weekday = iota
	tuesday
)

func otherEnum(d weekday) bool {
	switch d {
	case monday:
		return true
	}
	return false
}

// dynamicCase makes coverage undecidable; the analyzer stays silent.
func dynamicCase(c, threshold phase.Class) bool {
	switch c {
	case threshold:
		return true
	}
	return false
}

// Fixture model of internal/wire's FrameKind enum.
package wire

type FrameKind uint8

const (
	KindInvalid FrameKind = iota
	KindHello
	KindAck
	KindSample
	KindPrediction
	KindDrain
	KindError
	KindRollup
	KindSnapshot
	KindRestore
	KindBatch
)

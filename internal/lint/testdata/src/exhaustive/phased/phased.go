// Fixture model of internal/phased's SessionState enum.
package phased

type SessionState uint8

const (
	StateNegotiating SessionState = iota
	StateOpen
	StateDraining
	StateClosed
)

// Fixture model of internal/lint's LockMode enum.
package lint

type LockMode uint8

const (
	LockModeRead LockMode = iota
	LockModeWrite
)

// Fixture model of internal/agg's Outcome enum.
package agg

type Outcome uint8

const (
	OutcomeUnscored Outcome = iota
	OutcomeHit
	OutcomeMiss
	OutcomeShed
)

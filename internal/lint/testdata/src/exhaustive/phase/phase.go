// Fixture model of internal/phase's Class enum.
package phase

type Class uint8

const (
	ClassUnknown Class = iota
	ClassCPUBound
	ClassBalanced
	ClassMemoryBound
)

// Fixture: switches the exhaustive analyzer must flag.
package exhaustive

import (
	"exhaustive/agg"
	"exhaustive/dvfs"
	"exhaustive/fleet"
	"exhaustive/lint"
	"exhaustive/phase"
	"exhaustive/phased"
	"exhaustive/wire"
)

func missingCases(c phase.Class) int {
	switch c { // want `switch over phase.Class is not exhaustive: missing ClassUnknown, ClassMemoryBound`
	case phase.ClassCPUBound:
		return 1
	case phase.ClassBalanced:
		return 3
	}
	return 0
}

func emptyDefault(s dvfs.Setting) int {
	switch s {
	case dvfs.SpeedStepFast:
		return 0
	default: // want `switch over dvfs.Setting has an empty default`
	}
	return -1
}

func missingStatus(s fleet.Status) bool {
	switch s { // want `switch over fleet.Status is not exhaustive: missing StatusFailed, StatusCanceled`
	case fleet.StatusOK, fleet.StatusCached:
		return true
	}
	return false
}

func missingFrameKinds(k wire.FrameKind) int {
	switch k { // want `switch over wire.FrameKind is not exhaustive: missing KindInvalid, KindAck, KindPrediction, KindDrain, KindError, KindRollup, KindSnapshot, KindRestore, KindBatch`
	case wire.KindHello:
		return 1
	case wire.KindSample:
		return 3
	}
	return 0
}

func missingOutcomes(o agg.Outcome) bool {
	switch o { // want `switch over agg.Outcome is not exhaustive: missing OutcomeUnscored, OutcomeShed`
	case agg.OutcomeHit, agg.OutcomeMiss:
		return true
	}
	return false
}

func missingLockModes(m lint.LockMode) bool {
	switch m { // want `switch over lint.LockMode is not exhaustive: missing LockModeWrite`
	case lint.LockModeRead:
		return true
	}
	return false
}

func emptyDefaultState(s phased.SessionState) bool {
	switch s {
	case phased.StateOpen:
		return true
	default: // want `switch over phased.SessionState has an empty default`
	}
	return false
}

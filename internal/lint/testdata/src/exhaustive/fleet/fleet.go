// Fixture model of internal/fleet's Status enum.
package fleet

type Status uint8

const (
	StatusOK Status = iota + 1
	StatusCached
	StatusFailed
	StatusCanceled
)

// Fixture model of internal/dvfs's Setting enum.
package dvfs

type Setting int

const (
	SpeedStepFast Setting = iota
	SpeedStepMid
	SpeedStepSlow
)

// Fixture: allocation-free hot paths the hotalloc analyzer must
// accept.
package hotallocclean

import "errors"

type enc struct {
	buf  []byte
	keys []uint64
	n    int
}

//lint:hotpath
func Append(e *enc, v byte) {
	e.buf = append(e.buf, v)     // self-append is allocation-stable
	e.buf = append(e.buf[:0], v) // reslicing the same backing array too
}

//lint:hotpath
func Thread(dst []byte, v byte) []byte {
	return append(dst, v) // dst-threading return of a slice parameter
}

//lint:hotpath
func Grow(e *enc) {
	if len(e.keys) == 0 {
		e.keys = make([]uint64, 8) // amortized warm-up behind a len() check: cold
	}
	if 4*(e.n+1) > 3*len(e.keys) {
		e.grow() // growth call behind a len() check: cold, not traversed
	}
	e.n++
}

// grow allocates, but is only reachable from cold blocks.
func (e *enc) grow() {
	next := make([]uint64, 2*len(e.keys))
	copy(next, e.keys)
	e.keys = next
}

var errShort = errors.New("short buffer")

//lint:hotpath
func Decode(p []byte) (uint64, error) {
	if len(p) < 8 {
		return 0, errShort
	}
	if p[0] != 1 {
		return 0, errors.New("unsupported version") // error-bail block: cold
	}
	var v uint64
	for _, b := range p[:8] {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

//lint:hotpath
func Checked(e *enc) int {
	if err := e.validate(); err != nil {
		e.fail() // err != nil branch: cold
		return -1
	}
	return int(e.keys[0])
}

func (e *enc) validate() error { return nil }

// fail allocates, but only runs on the error path.
func (e *enc) fail() {
	_ = make([]byte, 1)
}

//lint:hotpath
func Blessed() {
	_ = make([]byte, 1) //lint:hotalloc one-time warm-up, measured zero amortized
}

// valueComposites never escape to the heap by themselves.
type pair struct{ a, b int }

//lint:hotpath
func Values(x int) pair {
	p := pair{a: x, b: x + 1}
	var arr [4]int
	arr[0] = p.a
	return pair{a: arr[0], b: p.b}
}

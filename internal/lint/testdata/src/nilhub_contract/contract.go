// Fixture: the telemetry-package one-branch contract and atomic-state
// rules (the package is named telemetry, so both apply).
package telemetry

import "sync/atomic"

type Counter struct {
	v atomic.Uint64
	n uint64 // want `instrument field Counter.n is plain uint64`
}

func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Bad: exported method dereferencing an unguarded receiver.
func (c *Counter) Reset() {
	c.v.Store(0) // want `exported method Reset dereferences receiver c without a nil check`
}

// Value is fine: early return establishes the guard.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset is unexported: callers inside the package guard first.
func (c *Counter) reset() {
	c.v.Store(0)
}

type Gauge struct {
	bits atomic.Uint64
	// scale is set once at construction and never written again.
	scale float64 //lint:immutable
}

func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.bits.Store(v)
	}
}

// Hub is an instrument by name even without atomic fields.
type Hub struct {
	samples int // want `instrument field Hub.samples is plain int`
	Gauge   *Gauge
}

// journal is mutex-style state, not an instrument: no atomic fields
// and not an instrument name, so plain counters are fine here.
type journal struct {
	seq     uint64
	dropped uint64
}

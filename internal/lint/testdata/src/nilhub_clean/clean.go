// Fixture: every guard form the nilhub analyzer must accept.
package nilhubclean

import "nilhub/telemetry"

type monitor struct {
	tel *telemetry.Hub
}

type config struct {
	Telemetry *telemetry.Hub
}

type module struct {
	cfg config
}

func (m *monitor) enclosingIf() {
	if m.tel != nil {
		m.tel.Steps.Inc()
		m.tel.Record(1)
	}
}

func (m *monitor) earlyReturn() {
	if m.tel == nil {
		return
	}
	m.tel.Steps.Inc()
}

func (m *monitor) shortCircuit() bool {
	return m.tel != nil && m.tel.Steps != nil
}

func (m *monitor) elseBranch() {
	if m.tel == nil {
		_ = m
	} else {
		m.tel.Steps.Inc()
	}
}

func (m *monitor) conjunction(enabled bool) {
	if enabled && m.tel != nil {
		m.tel.Record(3)
	}
}

func (mod *module) alias() {
	if tel := mod.cfg.Telemetry; tel != nil {
		tel.Record(2)
		tel.Events.Inc()
	}
}

func (m *monitor) closureAfterGuard() func() {
	if m.tel == nil {
		return func() {}
	}
	return func() { m.tel.Steps.Inc() }
}

// free functions are outside the check: wiring code passes hubs
// around without dereferencing them.
func wire(m *monitor, h *telemetry.Hub) {
	m.tel = h
}

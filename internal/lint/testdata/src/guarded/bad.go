// Fixture: guarded-field accesses the guarded analyzer must flag.
package guarded

import "sync"

type counterBox struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (b *counterBox) badInc() {
	b.n++ // want `write of guarded field b.n without holding b.mu`
}

func (b *counterBox) badRead() int {
	return b.n // want `read of guarded field b.n without holding b.mu`
}

func (b *counterBox) lateWrite() int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	b.n = n + 1 // want `write of guarded field b.n without holding b.mu`
	return n
}

// closures cannot inherit their creator's lock state: by the time the
// returned function runs, the deferred Unlock has fired.
func (b *counterBox) escapingClosure() func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() {
		b.n++ // want `write of guarded field b.n without holding b.mu`
	}
}

type rwBox struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *rwBox) writeUnderRLock(k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = 1 // want `write of guarded field r.m requires r.mu held for writing`
}

func (r *rwBox) deleteUnderRLock(k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	delete(r.m, k) // want `write of guarded field r.m requires r.mu held for writing`
}

// wrongLock holds a different box's mutex than the one it touches.
func wrongLock(a, b *counterBox) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.n = 1 // want `write of guarded field b.n without holding b.mu`
}

type owner struct {
	mu sync.Mutex
}

type item struct {
	state int // guarded by owner.mu
}

func foreignUnheld(o *owner, it *item) {
	it.state = 1 // want `write of guarded field it.state without holding owner.mu`
}

type annotTypos struct {
	mu sync.Mutex
	a  int /* guarded by lock */  // want `struct has no sync.Mutex or sync.RWMutex field with that name`
	b  int /* guarded by a.b.c */ // want `malformed guarded-by annotation`
}

func useAnnotTypos(t *annotTypos) int { return t.a + t.b }

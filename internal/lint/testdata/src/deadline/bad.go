// Fixture: undeadlined conn I/O the deadline analyzer must flag.
package deadline

import "time"

type conn struct{}

func (conn) Read(p []byte) (int, error)         { return 0, nil }
func (conn) Write(p []byte) (int, error)        { return 0, nil }
func (conn) SetReadDeadline(t time.Time) error  { return nil }
func (conn) SetWriteDeadline(t time.Time) error { return nil }
func (conn) SetDeadline(t time.Time) error      { return nil }

func bareRead(c conn, p []byte) {
	c.Read(p) // want `conn Read without a preceding SetReadDeadline`
}

func wrongKind(c conn, p []byte) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	c.Write(p) // want `conn Write without a preceding SetWriteDeadline`
}

func tooLate(c conn, p []byte) {
	c.Read(p) // want `conn Read without a preceding SetReadDeadline`
	c.SetReadDeadline(time.Now().Add(time.Second))
}

// helperWrite is undeadlined because badCaller never arms the write
// deadline; goodCaller alone is not enough.
func helperWrite(c conn, p []byte) {
	c.Write(p) // want `conn Write without a preceding SetWriteDeadline`
}

func goodCaller(c conn, p []byte) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	helperWrite(c, p)
}

func badCaller(c conn, p []byte) {
	helperWrite(c, p)
}

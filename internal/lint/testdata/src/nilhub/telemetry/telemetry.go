// Fixture model of internal/telemetry: a nil-safe Hub with atomic
// instruments.
package telemetry

import "sync/atomic"

type Counter struct {
	v atomic.Uint64
}

func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

type Hub struct {
	Steps  *Counter
	Events *Counter
}

func (h *Hub) Record(step int) {
	if h == nil {
		return
	}
	h.Steps.Inc()
}

// Fixture: unguarded hub dereferences the nilhub analyzer must flag.
package nilhub

import "nilhub/telemetry"

type monitor struct {
	tel *telemetry.Hub
}

type config struct {
	Telemetry *telemetry.Hub
}

type module struct {
	cfg config
}

func (m *monitor) step() {
	m.tel.Steps.Inc() // want `m.tel.Steps dereferences a \*telemetry.Hub without a dominating nil check`
	m.tel.Record(1)   // want `m.tel.Record dereferences a \*telemetry.Hub without a dominating nil check`
}

func (m *monitor) wrongGuard(other *telemetry.Hub) {
	if other != nil {
		m.tel.Steps.Inc() // want `m.tel.Steps dereferences a \*telemetry.Hub without a dominating nil check`
	}
}

func (m *monitor) guardDoesNotEscapeLoop() {
	if m.tel == nil {
		// No return: execution falls through, so nothing is dominated.
		_ = m
	}
	m.tel.Steps.Inc() // want `m.tel.Steps dereferences a \*telemetry.Hub without a dominating nil check`
}

func (mod *module) nested() {
	mod.cfg.Telemetry.Record(2) // want `mod.cfg.Telemetry.Record dereferences a \*telemetry.Hub without a dominating nil check`
}

func hub() *telemetry.Hub { return nil }

func (m *monitor) nonTrivial() {
	hub().Steps.Inc() // want `\*telemetry.Hub reached through a non-trivial expression`
}

// Fixture: deadline-disciplined conn I/O the deadline analyzer must
// accept.
package deadlineclean

import "time"

type conn struct{}

func (conn) Read(p []byte) (int, error)         { return 0, nil }
func (conn) Write(p []byte) (int, error)        { return 0, nil }
func (conn) SetReadDeadline(t time.Time) error  { return nil }
func (conn) SetWriteDeadline(t time.Time) error { return nil }
func (conn) SetDeadline(t time.Time) error      { return nil }

func readFrame(c conn, p []byte) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	c.Read(p)
}

func writeFrame(c conn, p []byte) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	c.Write(p)
}

// SetDeadline covers both directions.
func both(c conn, p []byte) {
	c.SetDeadline(time.Now().Add(time.Second))
	c.Read(p)
	c.Write(p)
}

// rawWrite relies on its callers, all of which arm the deadline first.
func rawWrite(c conn, p []byte) {
	c.Write(p)
}

func caller1(c conn, p []byte) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	rawWrite(c, p)
}

func caller2(c conn, p []byte) {
	c.SetDeadline(time.Now().Add(time.Second))
	rawWrite(c, p)
}

// rawRead is covered transitively: middle's only caller arms the read
// deadline before calling middle.
func rawRead(c conn, p []byte) {
	c.Read(p)
}

func middle(c conn, p []byte) {
	rawRead(c, p)
}

func outer(c conn, p []byte) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	middle(c, p)
}

// blocking documents a deliberately unbounded read via the escape
// hatch.
func blocking(c conn, p []byte) {
	c.Read(p) //lint:deadline handshake read is deliberately unbounded
}

// Fixture: floating-point comparisons the floateq analyzer must flag,
// plus the allowed zero-sentinel and //lint:floateq forms.
package floateq

type memPerUop float64

func compare(a, b float64, f32 float32, m memPerUop) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if f32 != 2.5 { // want `floating-point != comparison`
		return true
	}
	if m == 0.005 { // want `floating-point == comparison`
		return true
	}
	return false
}

func allowed(a float64, m memPerUop) bool {
	if a == 0 { // zero sentinel: exact by construction
		return false
	}
	if m != 0.0 { // also a zero literal
		return true
	}
	if a == 1.5 { //lint:floateq exactness intended here
		return true
	}
	const x, y = 0.1, 0.2
	return x+y == 0.3 // constant-folded at compile time, exact
}

// Fixture: hot-path allocations the hotalloc analyzer must flag.
package hotalloc

import "fmt"

type ring struct {
	buf []int
}

type adder interface{ Add(int) }

type impl struct{ n int }

func (i *impl) Add(d int) { i.n += d }

//lint:hotpath
func Step(r *ring, xs []int) int {
	tmp := make([]int, 4) // want `make allocates`
	_ = tmp
	p := new(int) // want `new allocates`
	_ = p
	r.buf = append(xs, 1) // want `append into a different slice may grow`
	f := func() {}        // want `closure allocates`
	f()
	lit := []int{1, 2} // want `slice literal allocates`
	_ = lit
	return helper(r)
}

// helper is pulled into the hot set by Step's call.
func helper(r *ring) int {
	e := &ring{} // want `&composite literal allocates`
	_ = e
	s := fmt.Sprintf("%d", len(r.buf)) // want `fmt.Sprintf allocates`
	return len(s)
}

//lint:hotpath
func More(m map[int][8]int, a *impl, s string, bs []byte) int {
	_ = adder(a) // want `conversion to interface type`
	t := s + "x" // want `string concatenation allocates`
	_ = t
	b := []byte(s) // want `string-to-\[\]byte conversion copies`
	_ = b
	u := string(bs) // want `\[\]byte-to-string conversion copies`
	_ = u
	n := 0
	for _, v := range m { // want `map iteration copies values`
		n += v[0]
	}
	g := a.Add // want `method value allocates`
	g(1)
	go a.Add(1) // want `go statement allocates`
	return n
}

// notHot allocates freely: it carries no annotation and is never
// called from hot code.
func notHot() []int {
	return make([]int, 16)
}

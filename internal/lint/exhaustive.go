package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// enumType names one enum-like named type whose switches must be
// exhaustive. Matching is by package *name* and type name (not import
// path) so the testdata fixtures can model the real packages.
type enumType struct{ pkg, typ string }

// enforcedEnums are the taxonomies a new bin must never silently fall
// out of: the six phase classes (Table 1), the SpeedStep operating
// points (Table 2), the telemetry journal's event kinds, the fleet
// engine's run statuses, the serving protocol's frame kinds, the
// phased session lifecycle, and the rollup pipeline's sample
// outcomes.
var enforcedEnums = []enumType{
	{"phase", "Class"},
	{"dvfs", "Setting"},
	{"telemetry", "EventKind"},
	{"fleet", "Status"},
	{"wire", "FrameKind"},
	{"phased", "SessionState"},
	{"agg", "Outcome"},
	{"lint", "LockMode"},
}

// ExhaustiveAnalyzer requires every switch over an enforced enum type
// to either cover all of the type's declared constants or carry a
// non-empty default clause that handles (typically rejects) unknown
// values. Without it, adding a seventh phase class or operating point
// compiles cleanly while every switch quietly drops the new bin.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over phase.Class, dvfs.Setting, telemetry.EventKind, " +
		"fleet.Status, wire.FrameKind, phased.SessionState, agg.Outcome and " +
		"lint.LockMode must cover all constants or reject unknowns in a default",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	pkgName, typeName, ok := namedFrom(tv.Type)
	if !ok || !isEnforcedEnum(pkgName, typeName) {
		return
	}
	named := tv.Type
	if ptr, isPtr := named.(*types.Pointer); isPtr {
		named = ptr.Elem()
	}
	constants := declaredConstants(named)
	if len(constants) == 0 {
		return
	}

	covered := make(map[string]bool)
	sawDynamicCase := false
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		if clause.List == nil {
			defaultClause = clause
			continue
		}
		for _, expr := range clause.List {
			etv, ok := pass.TypesInfo.Types[expr]
			if !ok || etv.Value == nil {
				// A non-constant case expression: coverage is no longer
				// decidable, so stay silent rather than guess.
				sawDynamicCase = true
				continue
			}
			for _, c := range constants {
				if constant.Compare(c.Val(), token.EQL, etv.Value) {
					covered[c.Name()] = true
				}
			}
		}
	}
	if sawDynamicCase {
		return
	}

	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			pass.Reportf(defaultClause.Pos(),
				"switch over %s.%s has an empty default: unknown values are "+
					"silently dropped; return an error or handle them explicitly",
				pkgName, typeName)
		}
		return
	}
	var missing []string
	for _, c := range constants {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s.%s is not exhaustive: missing %s (add the cases "+
				"or a default that rejects unknown values)",
			pkgName, typeName, strings.Join(missing, ", "))
	}
}

func isEnforcedEnum(pkgName, typeName string) bool {
	for _, e := range enforcedEnums {
		if e.pkg == pkgName && e.typ == typeName {
			return true
		}
	}
	return false
}

// declaredConstants returns the package-level constants declared with
// exactly the given named type, ordered by value so diagnostics list
// missing members in enum order rather than alphabetically.
func declaredConstants(t types.Type) []*types.Const {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return constant.Compare(out[i].Val(), token.LSS, out[j].Val())
	})
	return out
}

// String renders the enum set for documentation and -list output.
func (e enumType) String() string { return fmt.Sprintf("%s.%s", e.pkg, e.typ) }

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadlineAnalyzer requires every Read/Write on a connection-like
// value (anything with SetReadDeadline and SetWriteDeadline methods,
// i.e. net.Conn and friends) in the serving packages to be dominated
// by the matching Set*Deadline call: either textually earlier in the
// same function, or before every same-package call site of the
// enclosing function (transitively). An undeadlined Read hangs a
// worker forever on a stalled peer; an undeadlined Write hangs it on a
// full kernel send buffer — the failure modes the phased protocol's
// per-frame deadlines exist to rule out.
var DeadlineAnalyzer = &Analyzer{
	Name: "deadline",
	Doc: "net.Conn Read/Write must be preceded by SetReadDeadline/" +
		"SetWriteDeadline on the same conn in the same function or its callers",
	Run:   runDeadline,
	Match: matchPaths([]string{"internal/phased", "internal/phaseclient"}),
}

// connOpKind distinguishes deadline events from the I/O calls they
// must dominate.
type connOpKind uint8

const (
	connOpRead connOpKind = iota
	connOpWrite
	connOpSetRead
	connOpSetWrite
	connOpSetBoth
)

// connOp is one conn-related call in source order.
type connOp struct {
	kind connOpKind
	base string // rendered path of the conn expression; may be ""
	pos  token.Pos
	name string // method name, for diagnostics
}

// callSite is one same-package call of a function.
type callSite struct {
	caller *types.Func
	pos    token.Pos
}

func runDeadline(pass *Pass) error {
	ops := make(map[*types.Func][]connOp)
	callers := make(map[*types.Func][]callSite)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := connOpOf(pass, call); ok {
					ops[fn] = append(ops[fn], op)
					return true
				}
				if callee := staticCallee(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
					callers[callee] = append(callers[callee], callSite{caller: fn, pos: call.Pos()})
				}
				return true
			})
		}
	}

	for fn, list := range ops {
		for _, op := range list {
			if op.kind != connOpRead && op.kind != connOpWrite {
				continue
			}
			want := connOpSetRead
			wantName := "SetReadDeadline"
			if op.kind == connOpWrite {
				want = connOpSetWrite
				wantName = "SetWriteDeadline"
			}
			if dominatedLocally(list, op, want) {
				continue
			}
			if dominatedByCallers(ops, callers, fn, op.pos, want, map[*types.Func]bool{fn: true}) {
				continue
			}
			if pass.Suppressed("deadline", op.pos) {
				continue
			}
			pass.Reportf(op.pos,
				"conn %s without a preceding %s on %s in this function or its callers",
				op.name, wantName, describeBase(op.base))
		}
	}
	return nil
}

func describeBase(base string) string {
	if base == "" {
		return "the same conn"
	}
	return base
}

// dominatedLocally reports whether an earlier event in the same
// function arms the wanted deadline on the same conn path.
func dominatedLocally(list []connOp, op connOp, want connOpKind) bool {
	for _, prev := range list {
		if prev.pos >= op.pos {
			continue
		}
		if prev.kind != want && prev.kind != connOpSetBoth {
			continue
		}
		// Unrenderable paths conservatively match any armed deadline.
		if prev.base == op.base || prev.base == "" || op.base == "" {
			return true
		}
	}
	return false
}

// dominatedByCallers reports whether every same-package call site of
// fn is itself dominated by the wanted deadline (directly or via its
// own callers). Functions with no visible call sites — exported API,
// goroutine bodies, interface methods — are not dominated: they must
// arm the deadline locally.
func dominatedByCallers(ops map[*types.Func][]connOp, callers map[*types.Func][]callSite,
	fn *types.Func, _ token.Pos, want connOpKind, seen map[*types.Func]bool) bool {
	sites := callers[fn]
	if len(sites) == 0 {
		return false
	}
	for _, site := range sites {
		ok := false
		for _, prev := range ops[site.caller] {
			if prev.pos < site.pos && (prev.kind == want || prev.kind == connOpSetBoth) {
				ok = true
				break
			}
		}
		if !ok {
			if seen[site.caller] {
				return false
			}
			seen[site.caller] = true
			if !dominatedByCallers(ops, callers, site.caller, site.pos, want, seen) {
				return false
			}
		}
	}
	return true
}

// connOpOf classifies a call as a conn deadline or I/O operation. The
// receiver is duck-typed: any type carrying both SetReadDeadline and
// SetWriteDeadline methods counts as a conn, so wrappers and test
// fakes are covered without importing net.
func connOpOf(pass *Pass, call *ast.CallExpr) (connOp, bool) {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return connOp{}, false
	}
	var kind connOpKind
	switch sel.Sel.Name {
	case "Read":
		kind = connOpRead
	case "Write":
		kind = connOpWrite
	case "SetReadDeadline":
		kind = connOpSetRead
	case "SetWriteDeadline":
		kind = connOpSetWrite
	case "SetDeadline":
		kind = connOpSetBoth
	default:
		return connOp{}, false
	}
	if (kind == connOpRead || kind == connOpWrite) && len(call.Args) != 1 {
		return connOp{}, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil || !isConnLike(tv.Type, pass.Pkg) {
		return connOp{}, false
	}
	return connOp{kind: kind, base: renderPath(sel.X), pos: call.Pos(), name: sel.Sel.Name}, true
}

// isConnLike reports whether t has both SetReadDeadline and
// SetWriteDeadline methods.
func isConnLike(t types.Type, pkg *types.Package) bool {
	for _, name := range []string{"SetReadDeadline", "SetWriteDeadline"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}

// staticCallee resolves a call to a function or method declared in
// some package, or nil for builtins, conversions, and function-typed
// values.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := stripParens(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer proves the `//lint:hotpath` annotation: an
// annotated function, and every same-package function it (transitively)
// calls from hot code, must be free of heap-allocating constructs.
// Flagged: make, new, non-self append (anything but `x = append(x,
// ...)` or the dst-threading `return append(dst, ...)` of a slice
// parameter), slice and map literals, &composite literals, closures and
// method values, string concatenation, string<->[]byte conversions,
// conversions to interface types, map iteration that copies values, go
// statements, and calls into allocating stdlib helpers (fmt, errors.New,
// strings/strconv/sort/bytes formatters).
//
// Three block shapes are cold and exempt, matching the repo's
// amortized-growth and error-bail idioms: an if whose condition reads
// len() or cap() (growth paths proven amortized-zero by AllocsPerRun),
// an if whose condition compares an error against nil, and a block
// ending in a return whose final result is a non-nil error. Calls made
// only from cold blocks are not pulled into the hot set.
//
// Interface-method and cross-package calls are trusted: a hot callee in
// another package must carry its own //lint:hotpath annotation (checked
// when that package is analyzed) and AllocsPerRun witness.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //lint:hotpath (and their same-package " +
		"callees) must be statically allocation-free outside cold " +
		"error/growth blocks",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	hc := &hotChecker{
		pass:          pass,
		decls:         make(map[*types.Func]*ast.FuncDecl),
		visited:       make(map[*types.Func]bool),
		allowedAppend: make(map[*ast.CallExpr]bool),
	}
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				hc.decls[fn] = fd
			}
			if hasDirective(fd.Doc, "hotpath") {
				roots = append(roots, fd)
			}
		}
	}
	for _, fd := range roots {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			hc.visit(fn)
		}
	}
	return nil
}

// hasDirective reports whether a comment group carries a
// //lint:<name> directive line.
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		for _, n := range directiveNames(c.Text) {
			if n == name {
				return true
			}
		}
	}
	return false
}

// hotDenylist names cross-package calls that always allocate. Any
// function in package fmt is denied wholesale.
var hotDenylist = map[string]bool{
	"errors.New":          true,
	"strings.Join":        true,
	"strings.Repeat":      true,
	"strings.Replace":     true,
	"strings.ReplaceAll":  true,
	"strings.Split":       true,
	"strings.Fields":      true,
	"strings.ToUpper":     true,
	"strings.ToLower":     true,
	"strconv.Itoa":        true,
	"strconv.Quote":       true,
	"strconv.FormatInt":   true,
	"strconv.FormatUint":  true,
	"strconv.FormatFloat": true,
	"strconv.FormatBool":  true,
	"sort.Slice":          true,
	"sort.SliceStable":    true,
	"sort.Strings":        true,
	"bytes.Clone":         true,
	"bytes.Join":          true,
	"bytes.Repeat":        true,
}

type hotChecker struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
	// allowedAppend marks append calls proven to be self-appends
	// (x = append(x, ...)) or dst-threading returns.
	allowedAppend map[*ast.CallExpr]bool
	// fnName is the function currently being walked, for diagnostics.
	fnName string
	// params holds the receiver and parameter objects of the function
	// currently being walked, for the dst-threading append allowance.
	params map[types.Object]bool
}

func (hc *hotChecker) visit(fn *types.Func) {
	if fn == nil || hc.visited[fn] {
		return
	}
	hc.visited[fn] = true
	fd, ok := hc.decls[fn]
	if !ok {
		return
	}
	prevName, prevParams := hc.fnName, hc.params
	hc.fnName = fn.Name()
	hc.params = make(map[types.Object]bool)
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := hc.pass.TypesInfo.Defs[n]; obj != nil {
					hc.params[obj] = true
				}
			}
		}
	}
	hc.stmts(fd.Body.List)
	hc.fnName, hc.params = prevName, prevParams
}

func (hc *hotChecker) reportf(pos token.Pos, format string, args ...any) {
	if hc.pass.Suppressed("hotalloc", pos) {
		return
	}
	args = append(args, hc.fnName)
	hc.pass.Reportf(pos, format+" in hot function %s", args...)
}

func (hc *hotChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		hc.stmt(s)
	}
}

func (hc *hotChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		hc.expr(s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := stripParens(s.Rhs[0]).(*ast.CallExpr); ok &&
				hc.isBuiltin(call, "append") && len(call.Args) > 0 &&
				appendTargetsSame(s.Lhs[0], call.Args[0]) {
				hc.allowedAppend[call] = true
			}
		}
		for _, e := range s.Rhs {
			hc.expr(e)
		}
		for _, e := range s.Lhs {
			hc.expr(e)
		}
	case *ast.IncDecStmt:
		hc.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						hc.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if call, ok := stripParens(e).(*ast.CallExpr); ok &&
				hc.isBuiltin(call, "append") && len(call.Args) > 0 {
				if id := rootIdent(call.Args[0]); id != nil && hc.isParam(id) {
					hc.allowedAppend[call] = true
				}
			}
			hc.expr(e)
		}
	case *ast.SendStmt:
		hc.expr(s.Chan)
		hc.expr(s.Value)
	case *ast.GoStmt:
		hc.reportf(s.Pos(), "go statement allocates a goroutine")
		hc.expr(s.Call)
	case *ast.DeferStmt:
		hc.expr(s.Call)
	case *ast.IfStmt:
		hc.stmt(s.Init)
		hc.expr(s.Cond)
		thenCold, elseCold := coldBranches(hc.pass, s.Cond)
		if !thenCold {
			thenCold = blockReturnsError(hc.pass, s.Body)
		}
		if !thenCold {
			hc.stmts(s.Body.List)
		}
		if s.Else != nil && !elseCold {
			if eb, ok := s.Else.(*ast.BlockStmt); ok && blockReturnsError(hc.pass, eb) {
				return
			}
			hc.stmt(s.Else)
		}
	case *ast.ForStmt:
		hc.stmt(s.Init)
		if s.Cond != nil {
			hc.expr(s.Cond)
		}
		hc.stmt(s.Post)
		hc.stmts(s.Body.List)
	case *ast.RangeStmt:
		if tv, ok := hc.pass.TypesInfo.Types[s.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap && s.Value != nil {
				hc.reportf(s.Value.Pos(), "map iteration copies values")
			}
		}
		hc.expr(s.X)
		hc.stmts(s.Body.List)
	case *ast.BlockStmt:
		if !blockReturnsError(hc.pass, s) {
			hc.stmts(s.List)
		}
	case *ast.SwitchStmt:
		hc.stmt(s.Init)
		if s.Tag != nil {
			hc.expr(s.Tag)
		}
		for _, cl := range s.Body.List {
			clause := cl.(*ast.CaseClause)
			for _, e := range clause.List {
				hc.expr(e)
			}
			hc.clauseBody(clause.Body)
		}
	case *ast.TypeSwitchStmt:
		hc.stmt(s.Init)
		hc.stmt(s.Assign)
		for _, cl := range s.Body.List {
			hc.clauseBody(cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			clause := cl.(*ast.CommClause)
			hc.stmt(clause.Comm)
			hc.clauseBody(clause.Body)
		}
	case *ast.LabeledStmt:
		hc.stmt(s.Stmt)
	}
}

// clauseBody walks a case/comm clause body, honoring the
// error-bail cold rule for the clause as a whole.
func (hc *hotChecker) clauseBody(body []ast.Stmt) {
	if listReturnsError(hc.pass, body) {
		return
	}
	hc.stmts(body)
}

func (hc *hotChecker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		hc.call(e)
	case *ast.FuncLit:
		hc.reportf(e.Pos(), "closure allocates")
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := stripParens(e.X).(*ast.CompositeLit); ok {
				hc.reportf(e.Pos(), "&composite literal allocates")
			}
		}
		hc.expr(e.X)
	case *ast.CompositeLit:
		if tv, ok := hc.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				hc.reportf(e.Pos(), "slice literal allocates")
			case *types.Map:
				hc.reportf(e.Pos(), "map literal allocates")
			}
		}
		for _, el := range e.Elts {
			hc.expr(el)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if tv, ok := hc.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					hc.reportf(e.Pos(), "string concatenation allocates")
				}
			}
		}
		hc.expr(e.X)
		hc.expr(e.Y)
	case *ast.SelectorExpr:
		if sel, ok := hc.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.MethodVal {
			hc.reportf(e.Pos(), "method value allocates a bound closure")
		}
		hc.expr(e.X)
	case *ast.KeyValueExpr:
		hc.expr(e.Value)
	case *ast.IndexExpr:
		hc.expr(e.X)
		hc.expr(e.Index)
	case *ast.SliceExpr:
		hc.expr(e.X)
		hc.expr(e.Low)
		hc.expr(e.High)
		hc.expr(e.Max)
	case *ast.StarExpr:
		hc.expr(e.X)
	case *ast.ParenExpr:
		hc.expr(e.X)
	case *ast.TypeAssertExpr:
		hc.expr(e.X)
	}
}

func (hc *hotChecker) call(call *ast.CallExpr) {
	// Builtins.
	if id, ok := stripParens(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := hc.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				hc.reportf(call.Pos(), "make allocates")
			case "new":
				hc.reportf(call.Pos(), "new allocates")
			case "append":
				if !hc.allowedAppend[call] {
					hc.reportf(call.Pos(),
						"append into a different slice may grow and allocate (only x = append(x, ...) is allocation-stable)")
				}
			}
			for _, a := range call.Args {
				hc.expr(a)
			}
			return
		}
	}
	// Conversions.
	if tv, ok := hc.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		hc.checkConversion(call, tv.Type)
		hc.expr(call.Args[0])
		return
	}
	// Resolve the callee.
	switch fun := stripParens(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := hc.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			hc.callee(call, fn)
		}
		hc.expr(fun.X)
	case *ast.Ident:
		if fn, ok := hc.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			hc.callee(call, fn)
		}
	default:
		hc.expr(call.Fun)
	}
	for _, a := range call.Args {
		hc.expr(a)
	}
}

// checkConversion flags the conversions that copy or box.
func (hc *hotChecker) checkConversion(call *ast.CallExpr, target types.Type) {
	argTV, ok := hc.pass.TypesInfo.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	src, dst := argTV.Type.Underlying(), target.Underlying()
	if types.IsInterface(dst) && !types.IsInterface(src) {
		hc.reportf(call.Pos(), "conversion to interface type %s allocates", target)
		return
	}
	if isStringType(dst) && isByteOrRuneSlice(src) {
		hc.reportf(call.Pos(), "[]byte-to-string conversion copies")
		return
	}
	if isByteOrRuneSlice(dst) && isStringType(src) {
		hc.reportf(call.Pos(), "string-to-[]byte conversion copies")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// callee handles a resolved call target: same-package functions join
// the hot set, denylisted stdlib helpers are flagged, everything else
// (interface methods, other packages) is trusted to carry its own
// annotation.
func (hc *hotChecker) callee(call *ast.CallExpr, fn *types.Func) {
	if fn.Pkg() == nil {
		return
	}
	if fn.Pkg() == hc.pass.Pkg {
		if _, ok := hc.decls[fn]; ok {
			hc.visit(fn)
		}
		return
	}
	path := fn.Pkg().Path()
	if path == "fmt" {
		hc.reportf(call.Pos(), "fmt.%s allocates", fn.Name())
		return
	}
	if hotDenylist[path+"."+fn.Name()] {
		hc.reportf(call.Pos(), "%s.%s allocates", fn.Pkg().Name(), fn.Name())
	}
}

// isBuiltin reports whether call invokes the named builtin.
func (hc *hotChecker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := stripParens(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := hc.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isParam reports whether id names a slice-typed parameter (or
// receiver) of the function being walked — the dst argument of the
// `return append(dst, ...)` threading idiom.
func (hc *hotChecker) isParam(id *ast.Ident) bool {
	obj := hc.pass.TypesInfo.ObjectOf(id)
	if obj == nil || !hc.params[obj] {
		return false
	}
	_, isSlice := obj.Type().Underlying().(*types.Slice)
	return isSlice
}

// appendTargetsSame reports whether an assignment LHS and append's
// first argument name the same slice (after stripping reslices like
// buf[:0]).
func appendTargetsSame(lhs, arg ast.Expr) bool {
	l := renderPath(stripSlices(lhs))
	a := renderPath(stripSlices(arg))
	return l != "" && l == a
}

func stripSlices(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// coldBranches classifies an if statement's branches from its
// condition: len/cap reads mark the then-branch as an amortized growth
// path; err != nil marks the then-branch (and err == nil the
// else-branch) as error handling.
func coldBranches(pass *Pass, cond ast.Expr) (thenCold, elseCold bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := stripParens(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					thenCold = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.NEQ || n.Op == token.EQL {
				if errNilCompare(pass, n) {
					if n.Op == token.NEQ {
						thenCold = true
					} else {
						elseCold = true
					}
				}
			}
		}
		return true
	})
	return thenCold, elseCold
}

// errNilCompare reports whether b compares an error-typed expression
// against nil.
func errNilCompare(pass *Pass, b *ast.BinaryExpr) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := stripParens(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isErr := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.Type != nil && isErrorType(tv.Type)
	}
	return (isNil(b.X) && isErr(b.Y)) || (isNil(b.Y) && isErr(b.X))
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// blockReturnsError reports whether a block ends by returning a
// non-nil error — the error-construction bail-out shape.
func blockReturnsError(pass *Pass, b *ast.BlockStmt) bool {
	return listReturnsError(pass, b.List)
}

func listReturnsError(pass *Pass, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	ret, ok := list[len(list)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	last := stripParens(ret.Results[len(ret.Results)-1])
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[last]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

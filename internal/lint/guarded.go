package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockMode classifies how strongly a mutex is held at a guarded-field
// access: RLock grants LockModeRead (enough to read a guarded field),
// Lock grants LockModeWrite (required to write one).
type LockMode uint8

const (
	// LockModeRead is the shared mode granted by RWMutex.RLock.
	LockModeRead LockMode = iota
	// LockModeWrite is the exclusive mode granted by Mutex.Lock and
	// RWMutex.Lock.
	LockModeWrite
)

// String renders the mode for diagnostics.
func (m LockMode) String() string {
	switch m {
	case LockModeRead:
		return "read"
	case LockModeWrite:
		return "write"
	}
	return "invalid"
}

// guardedRe extracts the mutex reference from a "guarded by <ref>"
// field comment. The reference is either a sibling mutex field name
// ("mu") or a qualified <TypeName>.<field> naming a mutex owned by
// another struct ("worker.mu").
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardSpec is one parsed guard annotation. (Its own field comments
// must not contain the annotation phrase, or the analyzer would read
// them as annotations on itself.)
type guardSpec struct {
	// owner is the type name owning the guarding mutex for qualified
	// annotations of the <Type>.<mu> form; empty for sibling
	// annotations naming a bare mutex field, which bind to the mutex
	// on the same receiver value as the access.
	owner string
	// field is the mutex field (or variable) name.
	field string
}

func (g guardSpec) String() string {
	if g.owner == "" {
		return g.field
	}
	return g.owner + "." + g.field
}

// GuardedAnalyzer enforces "guarded by" field annotations: a struct
// field documented as `// guarded by mu` may only be read or written
// while that mutex — on the same receiver value — is held (Lock or a
// paired defer Unlock; RLock suffices for reads), and a field
// documented as `// guarded by Type.mu` requires any held lock whose
// owner type and field match. Values must be copied out before the
// unlock; the analyzer tracks lock state linearly through each
// function, treats functions whose name ends in "Locked" as entered
// with their receiver's mutexes held, and exempts accesses through
// freshly allocated locals that no other goroutine can see yet.
var GuardedAnalyzer = &Analyzer{
	Name: "guarded",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed " +
		"with that mutex held (RLock acceptable for reads); copy values " +
		"out before unlocking",
	Run: runGuarded,
}

func runGuarded(pass *Pass) error {
	specs := collectGuardSpecs(pass)
	if len(specs) == 0 {
		return nil
	}
	c := &guardedChecker{pass: pass, specs: specs}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Name.Name, fd.Recv, fd.Type, fd.Body)
		}
	}
	return nil
}

// collectGuardSpecs parses every "guarded by" field annotation in the
// package, validating sibling references against the enclosing
// struct's mutex fields.
func collectGuardSpecs(pass *Pass) map[*types.Var]guardSpec {
	specs := make(map[*types.Var]guardSpec)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				spec, pos, ok := parseGuardComment(field)
				if !ok {
					continue
				}
				if spec.field == "" {
					pass.Reportf(pos, "malformed guarded-by annotation: want "+
						"`guarded by <mutexField>` or `guarded by <Type>.<mutexField>`")
					continue
				}
				if spec.owner == "" && !structHasMutex(pass, st, spec.field) {
					pass.Reportf(pos, "guarded-by annotation names %q, but the "+
						"struct has no sync.Mutex or sync.RWMutex field with that name",
						spec.field)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						specs[v] = spec
					}
				}
			}
			return true
		})
	}
	return specs
}

// parseGuardComment scans a struct field's doc and trailing comments
// for a "guarded by" annotation. ok reports whether one was present
// (even if malformed, so the caller can diagnose it).
func parseGuardComment(field *ast.Field) (guardSpec, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "guarded by") {
				continue
			}
			m := guardedRe.FindStringSubmatch(c.Text)
			if m == nil {
				return guardSpec{}, c.Pos(), true
			}
			parts := strings.Split(m[1], ".")
			switch len(parts) {
			case 1:
				return guardSpec{field: parts[0]}, c.Pos(), true
			case 2:
				if parts[0] == "" || parts[1] == "" {
					return guardSpec{}, c.Pos(), true
				}
				return guardSpec{owner: parts[0], field: parts[1]}, c.Pos(), true
			default:
				return guardSpec{}, c.Pos(), true
			}
		}
	}
	return guardSpec{}, token.NoPos, false
}

// structHasMutex reports whether the struct literally declares a
// mutex-typed field with the given name.
func structHasMutex(pass *Pass, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name != name {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[f.Type]; ok && isMutexType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind one pointer).
func isMutexType(t types.Type) bool {
	pkg, name, ok := namedFrom(t)
	return ok && pkg == "sync" && (name == "Mutex" || name == "RWMutex")
}

// heldLock records one mutex the checker believes is held at the
// current program point.
type heldLock struct {
	mode  LockMode
	owner string // type name owning the mutex field; "" when unknown
	field string // mutex field or variable name
}

type guardedChecker struct {
	pass  *Pass
	specs map[*types.Var]guardSpec
	// fresh marks locals assigned from a fresh allocation (&T{...},
	// T{...}, new, make) in the current function: no other goroutine
	// can reach them yet, so their guarded fields are exempt until the
	// value is published. Reassigning the local from anything else
	// clears the mark.
	fresh map[types.Object]bool
}

// checkFunc analyzes one function body. Functions whose name ends in
// "Locked" are entered with every mutex field of their receiver and
// named-struct parameters assumed write-held — the repo's convention
// for caller-holds-the-lock helpers.
func (c *guardedChecker) checkFunc(name string, recv *ast.FieldList, typ *ast.FuncType, body *ast.BlockStmt) {
	held := make(map[string]heldLock)
	if strings.HasSuffix(name, "Locked") {
		for _, fl := range []*ast.FieldList{recv, typ.Params} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, n := range f.Names {
					c.seedHeldMutexes(held, n)
				}
			}
		}
	}
	c.fresh = make(map[types.Object]bool)
	c.stmts(body.List, held)
}

// seedHeldMutexes marks every mutex field of n's (struct) type as
// write-held under the path "<n>.<field>".
func (c *guardedChecker) seedHeldMutexes(held map[string]heldLock, n *ast.Ident) {
	obj := c.pass.TypesInfo.Defs[n]
	if obj == nil {
		return
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, typeName, ok := namedFrom(t)
	if !ok {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			held[n.Name+"."+f.Name()] = heldLock{
				mode: LockModeWrite, owner: typeName, field: f.Name(),
			}
		}
	}
}

func cloneHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// stmts processes a statement list linearly, mutating held in place as
// locks are acquired and released.
func (c *guardedChecker) stmts(list []ast.Stmt, held map[string]heldLock) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *guardedChecker) stmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if ev, ok := c.lockEvent(call); ok {
				if ev.lock {
					if ev.key != "" {
						held[ev.key] = heldLock{mode: ev.mode, owner: ev.owner, field: ev.field}
					}
				} else {
					delete(held, ev.key)
				}
				return
			}
		}
		c.checkRead(s.X, held)
	case *ast.DeferStmt:
		if _, ok := c.lockEvent(s.Call); ok {
			// defer mu.Unlock() pairs with an earlier Lock: the mutex
			// stays held to the end of the function.
			return
		}
		c.checkRead(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkRead(e, held)
		}
		for _, e := range s.Lhs {
			c.checkWrite(e, held)
		}
		c.trackFresh(s)
	case *ast.IncDecStmt:
		c.checkWrite(s.X, held)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				c.checkRead(v, held)
			}
			if len(vs.Names) == len(vs.Values) {
				for i, n := range vs.Names {
					if obj := c.pass.TypesInfo.Defs[n]; obj != nil {
						c.fresh[obj] = isFreshExpr(vs.Values[i])
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkRead(e, held)
		}
	case *ast.SendStmt:
		c.checkRead(s.Chan, held)
		c.checkRead(s.Value, held)
	case *ast.GoStmt:
		c.checkRead(s.Call, held)
	case *ast.IfStmt:
		c.stmt(s.Init, held)
		c.checkRead(s.Cond, held)
		c.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		c.stmt(s.Init, held)
		if s.Cond != nil {
			c.checkRead(s.Cond, held)
		}
		body := cloneHeld(held)
		c.stmts(s.Body.List, body)
		c.stmt(s.Post, body)
	case *ast.RangeStmt:
		c.checkRead(s.X, held)
		if s.Tok == token.ASSIGN {
			if s.Key != nil {
				c.checkWrite(s.Key, held)
			}
			if s.Value != nil {
				c.checkWrite(s.Value, held)
			}
		}
		c.stmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		c.stmt(s.Init, held)
		if s.Tag != nil {
			c.checkRead(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			clause := cl.(*ast.CaseClause)
			inner := cloneHeld(held)
			for _, e := range clause.List {
				c.checkRead(e, inner)
			}
			c.stmts(clause.Body, inner)
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, held)
		c.stmt(s.Assign, held)
		for _, cl := range s.Body.List {
			clause := cl.(*ast.CaseClause)
			c.stmts(clause.Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			clause := cl.(*ast.CommClause)
			inner := cloneHeld(held)
			c.stmt(clause.Comm, inner)
			c.stmts(clause.Body, inner)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, cloneHeld(held))
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

// trackFresh updates the fresh-local set after an assignment: a plain
// identifier assigned a fresh allocation becomes exempt, and one
// assigned anything else (an alias another goroutine may share) loses
// the exemption.
func (c *guardedChecker) trackFresh(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
					c.fresh[obj] = false
				}
			}
		}
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		c.fresh[obj] = isFreshExpr(s.Rhs[i])
	}
}

// isFreshExpr reports whether e evaluates to storage no other
// goroutine can reach yet.
func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	case *ast.ParenExpr:
		return isFreshExpr(e.X)
	}
	return false
}

// lockEvent describes one Lock/RLock/Unlock/RUnlock call.
type lockEvent struct {
	key   string // rendered path of the mutex expression; may be ""
	owner string
	field string
	mode  LockMode
	lock  bool // acquire vs release
}

func (c *guardedChecker) lockEvent(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var mode LockMode
	var lock bool
	switch sel.Sel.Name {
	case "Lock":
		mode, lock = LockModeWrite, true
	case "RLock":
		mode, lock = LockModeRead, true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return lockEvent{}, false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return lockEvent{}, false
	}
	ev := lockEvent{key: renderPath(sel.X), mode: mode, lock: lock}
	switch x := stripParens(sel.X).(type) {
	case *ast.SelectorExpr:
		ev.field = x.Sel.Name
		if btv, ok := c.pass.TypesInfo.Types[x.X]; ok {
			if _, name, ok := namedFrom(btv.Type); ok {
				ev.owner = name
			}
		}
	case *ast.Ident:
		ev.field = x.Name
	}
	return ev, true
}

// checkWrite classifies the top-level selector chain of an assignment
// target as a write; nested index and pointer subexpressions are only
// reads.
func (c *guardedChecker) checkWrite(e ast.Expr, held map[string]heldLock) {
	switch e := e.(type) {
	case *ast.Ident:
	case *ast.SelectorExpr:
		c.fieldAccess(e, LockModeWrite, held)
		c.checkRead(e.X, held)
	case *ast.IndexExpr:
		c.checkWrite(e.X, held)
		c.checkRead(e.Index, held)
	case *ast.StarExpr:
		c.checkRead(e.X, held)
	case *ast.ParenExpr:
		c.checkWrite(e.X, held)
	default:
		c.checkRead(e, held)
	}
}

// checkRead walks an expression tree classifying every guarded-field
// selector as a read. Function literals are analyzed as their own
// functions with no locks held: a closure runs at an unknown time, so
// it cannot inherit its creator's lock state. The builtin delete
// mutates its map argument, so that argument is classified as a write.
func (c *guardedChecker) checkRead(e ast.Expr, held map[string]heldLock) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, make(map[string]heldLock))
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					c.checkWrite(n.Args[0], held)
					c.checkRead(n.Args[1], held)
					return false
				}
			}
		case *ast.SelectorExpr:
			c.fieldAccess(n, LockModeRead, held)
		}
		return true
	})
}

// fieldAccess checks one guarded-field selector against the held-lock
// state.
func (c *guardedChecker) fieldAccess(sel *ast.SelectorExpr, mode LockMode, held map[string]heldLock) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	spec, ok := c.specs[v]
	if !ok {
		return
	}
	if id := rootIdent(sel.X); id != nil {
		if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.fresh[obj] {
			return
		}
	}
	want := spec.String()
	if spec.owner != "" {
		for _, hl := range held {
			if hl.owner == spec.owner && hl.field == spec.field && lockModeCovers(hl.mode, mode) {
				return
			}
		}
	} else {
		base := renderPath(sel.X)
		if base != "" {
			want = base + "." + spec.field
			if hl, ok := held[want]; ok {
				if lockModeCovers(hl.mode, mode) {
					return
				}
				if !c.pass.Suppressed("guarded", sel.Pos()) {
					c.pass.Reportf(sel.Pos(),
						"%s of guarded field %s.%s requires %s held for writing, but only RLock is held",
						mode, base, sel.Sel.Name, want)
				}
				return
			}
		}
	}
	if !c.pass.Suppressed("guarded", sel.Pos()) {
		c.pass.Reportf(sel.Pos(),
			"%s of guarded field %s without holding %s",
			mode, renderAccess(sel), want)
	}
}

// lockModeCovers reports whether a lock held in mode have satisfies an
// access needing mode need.
func lockModeCovers(have, need LockMode) bool {
	return need == LockModeRead || have == LockModeWrite
}

// renderAccess renders a selector for diagnostics, falling back to the
// field name when the base is not a simple path.
func renderAccess(sel *ast.SelectorExpr) string {
	if p := renderPath(sel); p != "" {
		return p
	}
	return sel.Sel.Name
}

// renderPath renders a simple access path ("s.c.mu", "sh.buckets[i]")
// or "" for expressions that are not stable paths.
func renderPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderPath(e.X)
	case *ast.StarExpr:
		return renderPath(e.X)
	case *ast.IndexExpr:
		base := renderPath(e.X)
		idx := renderPath(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}

// rootIdent returns the leftmost identifier of an access path, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotAllocAnalyzer,
		"hotalloc", "hotalloc_clean")
}

package lint_test

import (
	"testing"

	"phasemon/internal/lint"
	"phasemon/internal/lint/linttest"
)

func TestExhaustive(t *testing.T) {
	linttest.Run(t, "testdata", lint.ExhaustiveAnalyzer,
		"exhaustive", "exhaustive_clean")
}

package lint

import (
	"strings"
	"testing"
)

// FuzzDirectiveNames drives the //lint: directive parser with
// arbitrary comment text and checks its structural guarantees: only
// //lint:-prefixed comments yield names, no yielded name is empty or
// contains whitespace or a comma, and every name appears verbatim in
// the directive head. The escape-hatch machinery (Pass.Suppressed)
// and the hotpath root discovery both consume this parser, so a
// malformed comment must degrade to "no directive", never to a bogus
// analyzer name.
func FuzzDirectiveNames(f *testing.F) {
	f.Add("//lint:determinism reason")
	f.Add("//lint:guarded,hotalloc copy-out is safe here")
	f.Add("//lint:guarded,hotalloc,deadline")
	f.Add("//lint:")
	f.Add("//lint:,")
	f.Add("//lint:, ,,")
	f.Add("//lint:floateq\r\ntrailing CRLF")
	f.Add("//lint:a\tb")
	f.Add("// lint:nilhub not a directive")
	f.Add("//nolint:everything")
	f.Add("/*lint:exhaustive*/")
	f.Add("//lint:exhaustive,exhaustive")
	f.Add("//lint:名前,πass")
	f.Fuzz(func(t *testing.T, text string) {
		names := directiveNames(text)
		if !strings.HasPrefix(text, "//lint:") {
			if names != nil {
				t.Fatalf("directiveNames(%q) = %v for a non-directive comment", text, names)
			}
			return
		}
		// Recompute the directive head by the documented grammar: it
		// ends at the first space, tab, CR, or NL.
		head := strings.TrimPrefix(text, "//lint:")
		if i := strings.IndexAny(head, " \t\r\n"); i >= 0 {
			head = head[:i]
		}
		for _, n := range names {
			if n == "" {
				t.Fatalf("directiveNames(%q) yielded an empty name: %v", text, names)
			}
			if strings.ContainsAny(n, " \t\r\n,") {
				t.Fatalf("directiveNames(%q) yielded name %q containing whitespace or a comma", text, n)
			}
			if !strings.Contains(head, n) {
				t.Fatalf("directiveNames(%q) yielded %q, absent from directive head %q", text, n, head)
			}
		}
	})
}

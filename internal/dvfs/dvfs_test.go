package dvfs

import (
	"math"
	"strings"
	"testing"

	"phasemon/internal/cpusim"
	"phasemon/internal/phase"
	"phasemon/internal/telemetry"
)

func TestPentiumMMatchesPaperTable2(t *testing.T) {
	l := PentiumM()
	want := []OperatingPoint{
		{1500e6, 1.484},
		{1400e6, 1.452},
		{1200e6, 1.356},
		{1000e6, 1.228},
		{800e6, 1.116},
		{600e6, 0.956},
	}
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	for i, w := range want {
		if got := l.Point(Setting(i)); got != w {
			t.Errorf("point %d = %v, want %v", i, got, w)
		}
	}
	if l.Fastest() != 0 || l.Slowest() != 5 {
		t.Errorf("Fastest/Slowest = %d/%d", l.Fastest(), l.Slowest())
	}
}

func TestNewLadderValidation(t *testing.T) {
	bad := [][]OperatingPoint{
		nil,
		{},
		{{0, 1}},
		{{1e9, 0}},
		{{1e9, -1}},
		{{1e9, 1}, {1e9, 0.9}},      // equal frequency
		{{1e9, 1}, {1.2e9, 1.1}},    // ascending frequency
		{{math.Inf(1), 1}},          // infinite
		{{1e9, 1}, {math.NaN(), 1}}, // NaN
		// Duplicate within ApproxEqual tolerance: the same physical
		// frequency arrived at through different arithmetic.
		{{1e9, 1}, {1e9 * (1 - 1e-14), 0.9}},
		// Voltage rising as frequency falls.
		{{1e9, 1.0}, {8e8, 1.2}},
		{{1e9, 1.0}, {8e8, 0.9}, {6e8, 0.95}},
	}
	for i, pts := range bad {
		if _, err := NewLadder("x", pts); err == nil {
			t.Errorf("case %d: expected error for %v", i, pts)
		}
	}
	// Flat voltage across points is legal: real tables plateau.
	if _, err := NewLadder("flat", []OperatingPoint{{1e9, 1.0}, {8e8, 1.0}}); err != nil {
		t.Errorf("flat-voltage ladder rejected: %v", err)
	}
}

func TestNamedSettingsIndexPentiumM(t *testing.T) {
	l := PentiumM()
	want := map[Setting]float64{
		SpeedStep1500: 1500e6,
		SpeedStep1400: 1400e6,
		SpeedStep1200: 1200e6,
		SpeedStep1000: 1000e6,
		SpeedStep800:  800e6,
		SpeedStep600:  600e6,
	}
	if len(want) != l.Len() {
		t.Fatalf("%d named settings for %d ladder points", len(want), l.Len())
	}
	for s, hz := range want {
		if got := l.Point(s).FrequencyHz; got != hz {
			t.Errorf("Point(%d).FrequencyHz = %v, want %v", s, got, hz)
		}
	}
}

func TestClassSettingMonotonic(t *testing.T) {
	l := PentiumM()
	prev := math.Inf(1)
	for c := phase.ClassCPUBound; c <= phase.ClassMemoryBound; c++ {
		s := ClassSetting(c)
		if !l.ValidSetting(s) {
			t.Fatalf("ClassSetting(%v) = %d invalid for Pentium-M ladder", c, s)
		}
		f := l.Point(s).FrequencyHz
		if f > prev {
			t.Errorf("ClassSetting(%v) speeds up to %v Hz; must not rise with memory-boundedness", c, f)
		}
		prev = f
	}
	if got := ClassSetting(phase.ClassUnknown); got != l.Fastest() {
		t.Errorf("ClassSetting(ClassUnknown) = %d, want fastest %d", got, l.Fastest())
	}
}

func TestLadderPointPanicsOnBadSetting(t *testing.T) {
	l := PentiumM()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Point(Setting(99))
}

func TestFrequenciesCopy(t *testing.T) {
	l := PentiumM()
	f := l.Frequencies()
	if len(f) != 6 || f[0] != 1500e6 || f[5] != 600e6 {
		t.Fatalf("Frequencies = %v", f)
	}
	f[0] = 1
	if l.Point(0).FrequencyHz != 1500e6 {
		t.Error("mutating Frequencies() result affected ladder")
	}
}

func TestIdentityTranslation(t *testing.T) {
	l := PentiumM()
	tr, err := Identity(l, 6)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 6; p++ {
		if got := tr.Setting(phase.ID(p)); got != Setting(p-1) {
			t.Errorf("phase %d -> setting %d, want %d", p, got, p-1)
		}
	}
	// Unknown phases fall back to fastest.
	for _, p := range []phase.ID{phase.None, -3, 7, 100} {
		if got := tr.Setting(p); got != l.Fastest() {
			t.Errorf("phase %v -> setting %d, want fastest", p, got)
		}
	}
	if _, err := Identity(l, 4); err == nil {
		t.Error("Identity with mismatched phase count should fail")
	}
}

func TestNewTranslationValidation(t *testing.T) {
	l := PentiumM()
	if _, err := NewTranslation(l, 0, nil); err == nil {
		t.Error("expected error for zero phases")
	}
	if _, err := NewTranslation(l, 3, []Setting{0, 1}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := NewTranslation(l, 2, []Setting{0, 9}); err == nil {
		t.Error("expected error for invalid setting")
	}
	tr, err := NewTranslation(l, 2, []Setting{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Setting(1) != 5 || tr.Setting(2) != 0 {
		t.Error("custom mapping not honored")
	}
	if tr.NumPhases() != 2 {
		t.Errorf("NumPhases = %d", tr.NumPhases())
	}
	if tr.Ladder() != l {
		t.Error("Ladder() identity")
	}
}

func TestTranslationDescribe(t *testing.T) {
	l := PentiumM()
	tr, _ := Identity(l, 6)
	d := tr.Describe(phase.Default())
	for _, want := range []string{"1500 MHz", "600 MHz", "1484 mV", "956 mV", "> 0.030", "< 0.005"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestControllerTransitions(t *testing.T) {
	l := PentiumM()
	c := NewController(l, 50e-6)
	if c.Current() != l.Fastest() {
		t.Fatalf("initial setting = %d", c.Current())
	}
	// Same-setting writes are free (Figure 8's "same as current?" check).
	cost, err := c.Set(l.Fastest())
	if err != nil || cost != 0 {
		t.Errorf("no-op set: cost=%v err=%v", cost, err)
	}
	if c.Transitions() != 0 {
		t.Errorf("no-op counted as transition")
	}
	cost, err = c.Set(3)
	if err != nil || cost != 50e-6 {
		t.Errorf("transition: cost=%v err=%v", cost, err)
	}
	if c.Current() != 3 || c.Transitions() != 1 || c.TimeInTransition() != 50e-6 {
		t.Errorf("state after transition: cur=%d n=%d t=%v", c.Current(), c.Transitions(), c.TimeInTransition())
	}
	if _, err := c.Set(Setting(17)); err == nil {
		t.Error("expected error for invalid setting")
	}
	if c.Point() != l.Point(3) {
		t.Errorf("Point = %v", c.Point())
	}
	c.Reset()
	if c.Current() != 0 || c.Transitions() != 0 || c.TimeInTransition() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestControllerNegativeLatencyClamped(t *testing.T) {
	c := NewController(PentiumM(), -5)
	cost, _ := c.Set(1)
	if cost != 0 {
		t.Errorf("cost = %v, want 0", cost)
	}
}

func TestDeriveBoundedRespectsBound(t *testing.T) {
	l := PentiumM()
	tab := phase.Default()
	model := cpusim.New(cpusim.DefaultConfig())
	const maxDeg = 0.05
	tr, err := DeriveBounded(l, tab, model.Slowdown, maxDeg, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	fmax := l.Point(l.Fastest()).FrequencyHz
	prev := Setting(-1)
	for p := 1; p <= tab.NumPhases(); p++ {
		s := tr.Setting(phase.ID(p))
		lo, _ := tab.Range(phase.ID(p))
		slow := model.Slowdown(lo, 1.5, l.Point(s).FrequencyHz, fmax)
		if slow > 1+maxDeg+1e-12 {
			t.Errorf("phase %d: chosen setting %d has slowdown %.4f > bound", p, s, slow)
		}
		if s < prev {
			t.Errorf("phase %d: setting %d below previous %d (not monotone)", p, s, prev)
		}
		prev = s
	}
	// Phase 1 (CPU-bound corner, mem/uop 0) cannot be slowed at all
	// within 5%, so it must stay at the fastest point.
	if tr.Setting(1) != l.Fastest() {
		t.Errorf("phase 1 setting = %d, want fastest", tr.Setting(1))
	}
}

func TestDeriveBoundedExtremes(t *testing.T) {
	l := PentiumM()
	tab := phase.Default()
	model := cpusim.New(cpusim.DefaultConfig())
	// Zero bound: everything runs at full speed.
	tr, err := DeriveBounded(l, tab, model.Slowdown, 0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 6; p++ {
		if tr.Setting(phase.ID(p)) != l.Fastest() {
			t.Errorf("zero bound: phase %d not fastest", p)
		}
	}
	// Enormous bound: everything may run at the slowest point.
	tr, err = DeriveBounded(l, tab, model.Slowdown, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 6; p++ {
		if tr.Setting(phase.ID(p)) != l.Slowest() {
			t.Errorf("huge bound: phase %d not slowest", p)
		}
	}
	if _, err := DeriveBounded(l, tab, model.Slowdown, -1, 1.5); err == nil {
		t.Error("expected error for negative bound")
	}
}

func TestDeriveBoundedLessAggressiveThanIdentity(t *testing.T) {
	// The conservative table trades power savings for a performance
	// guarantee, so each phase's setting is at least as fast as the
	// identity (Table 2) mapping's.
	l := PentiumM()
	tab := phase.Default()
	model := cpusim.New(cpusim.DefaultConfig())
	id, _ := Identity(l, 6)
	tr, err := DeriveBounded(l, tab, model.Slowdown, 0.05, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 6; p++ {
		if tr.Setting(phase.ID(p)) > id.Setting(phase.ID(p)) {
			t.Errorf("phase %d: conservative setting %d slower than identity %d",
				p, tr.Setting(phase.ID(p)), id.Setting(phase.ID(p)))
		}
	}
}

func TestOperatingPointString(t *testing.T) {
	s := OperatingPoint{1500e6, 1.484}.String()
	if !strings.Contains(s, "1500 MHz") || !strings.Contains(s, "1484 mV") {
		t.Errorf("String = %q", s)
	}
}

func TestLadderFromFrequencies(t *testing.T) {
	l, err := LadderFromFrequencies("real", []float64{600e6, 1500e6, 1000e6}, 0.95, 1.48)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Sorted fastest first with interpolated voltages at the endpoints.
	top, bottom := l.Point(0), l.Point(2)
	if top.FrequencyHz != 1500e6 || math.Abs(top.VoltageV-1.48) > 1e-12 {
		t.Errorf("top point %v", top)
	}
	if bottom.FrequencyHz != 600e6 || math.Abs(bottom.VoltageV-0.95) > 1e-12 {
		t.Errorf("bottom point %v", bottom)
	}
	// Mid frequency interpolates linearly: (1000-600)/(1500-600) of range.
	mid := l.Point(1)
	want := 0.95 + (1.48-0.95)*400.0/900.0
	if math.Abs(mid.VoltageV-want) > 1e-12 {
		t.Errorf("mid voltage %v, want %v", mid.VoltageV, want)
	}
	// Validation.
	if _, err := LadderFromFrequencies("x", nil, 0.9, 1.4); err == nil {
		t.Error("empty frequencies accepted")
	}
	if _, err := LadderFromFrequencies("x", []float64{1e9, 1e9}, 0.9, 1.4); err == nil {
		t.Error("duplicate frequencies accepted")
	}
	if _, err := LadderFromFrequencies("x", []float64{1e9}, 1.4, 0.9); err == nil {
		t.Error("inverted voltage range accepted")
	}
	// Single frequency: voltage pinned at the maximum.
	single, err := LadderFromFrequencies("x", []float64{1e9}, 0.9, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if single.Point(0).VoltageV != 1.4 {
		t.Errorf("single-point voltage %v", single.Point(0).VoltageV)
	}
}

func TestNewControllerWithTelemetry(t *testing.T) {
	hub := telemetry.NewHub(6)
	c := NewControllerWithTelemetry(PentiumM(), 0, hub)
	if c.Telemetry() != hub {
		t.Fatal("construction-time hub not attached")
	}
	if got := hub.CurrentSetting.Value(); got != float64(c.Current()) {
		t.Errorf("setting gauge = %v, want %v at construction", got, c.Current())
	}
	if _, err := c.Set(3); err != nil {
		t.Fatal(err)
	}
	if got := hub.DVFSTransitions.Value(); got != 1 {
		t.Errorf("transitions counter = %d, want 1", got)
	}
	// A nil hub degrades to the plain constructor.
	if c := NewControllerWithTelemetry(PentiumM(), 0, nil); c.Telemetry() != nil {
		t.Error("nil hub attached something")
	}
}

// Package dvfs models dynamic voltage and frequency scaling as
// provided by Intel SpeedStep on the paper's Pentium-M platform.
//
// A Ladder is an ordered set of operating points (frequency, voltage
// pairs), fastest first. A Controller actuates ladder settings with a
// realistic transition latency. A Translation is the lookup table —
// defined once at initialization, reconfigurable afterwards — that the
// PMI handler uses to turn a predicted phase into an operating point
// (the paper's Table 2).
package dvfs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"phasemon/internal/phase"
	"phasemon/internal/telemetry"
)

// OperatingPoint is one DVFS setting: a core frequency and the supply
// voltage required to sustain it.
type OperatingPoint struct {
	FrequencyHz float64
	VoltageV    float64
}

// String renders the point the way the paper's Table 2 does.
func (p OperatingPoint) String() string {
	return fmt.Sprintf("(%4.0f MHz, %4.0f mV)", p.FrequencyHz/1e6, p.VoltageV*1e3)
}

// Setting indexes an operating point within a Ladder; 0 is the fastest
// point.
type Setting int

// Named settings for the Pentium-M ladder of the paper's Table 2,
// fastest first. They index PentiumM(); ladders of other sizes use
// plain integer settings. Switches over Setting are checked for
// exhaustiveness by phasemonlint, so a seventh operating point forces
// every consumer to decide how to handle it.
const (
	SpeedStep1500 Setting = iota // 1500 MHz, 1.484 V
	SpeedStep1400                // 1400 MHz, 1.452 V
	SpeedStep1200                // 1200 MHz, 1.356 V
	SpeedStep1000                // 1000 MHz, 1.228 V
	SpeedStep800                 //  800 MHz, 1.116 V
	SpeedStep600                 //  600 MHz, 0.956 V
)

// Ladder is an immutable, ordered collection of operating points,
// fastest (highest frequency) first.
type Ladder struct {
	name   string
	points []OperatingPoint
}

// ErrBadLadder reports an invalid operating point list.
var ErrBadLadder = errors.New("dvfs: operating points must be positive, strictly descending in frequency, and non-increasing in voltage")

// NewLadder validates and builds a ladder. Points must be ordered by
// strictly descending frequency — duplicates (within ApproxEqual
// tolerance) are rejected, since two settings at the same frequency
// make Setting ambiguous — with positive voltages that never rise as
// frequency falls, matching how DVFS hardware scales supply voltage
// with clock speed.
func NewLadder(name string, points []OperatingPoint) (*Ladder, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadLadder)
	}
	prevF, prevV := math.Inf(1), math.Inf(1)
	for _, p := range points {
		if !(p.FrequencyHz > 0) || !(p.VoltageV > 0) ||
			math.IsInf(p.FrequencyHz, 0) || math.IsInf(p.VoltageV, 0) {
			return nil, fmt.Errorf("%w: point %v", ErrBadLadder, p)
		}
		if phase.ApproxEqual(p.FrequencyHz, prevF) {
			return nil, fmt.Errorf("%w: duplicate frequency %v", ErrBadLadder, p.FrequencyHz)
		}
		if p.FrequencyHz >= prevF {
			return nil, fmt.Errorf("%w: frequency %v not below %v", ErrBadLadder, p.FrequencyHz, prevF)
		}
		if p.VoltageV > prevV {
			return nil, fmt.Errorf("%w: voltage %v rises as frequency falls below %v", ErrBadLadder, p.VoltageV, prevF)
		}
		prevF, prevV = p.FrequencyHz, p.VoltageV
	}
	cp := make([]OperatingPoint, len(points))
	copy(cp, points)
	return &Ladder{name: name, points: cp}, nil
}

// PentiumM returns the experimental platform's ladder: the six
// SpeedStep operating points of the paper's Table 2.
func PentiumM() *Ladder {
	l, err := NewLadder("pentium-m", []OperatingPoint{
		{1500e6, 1.484},
		{1400e6, 1.452},
		{1200e6, 1.356},
		{1000e6, 1.228},
		{800e6, 1.116},
		{600e6, 0.956},
	})
	if err != nil {
		panic(err)
	}
	return l
}

// Name returns the ladder's name.
func (l *Ladder) Name() string { return l.name }

// Len returns the number of operating points.
func (l *Ladder) Len() int { return len(l.points) }

// Point returns the operating point at the given setting. It panics if
// the setting is out of range, as that is always a programming error
// in the caller.
func (l *Ladder) Point(s Setting) OperatingPoint {
	if !l.ValidSetting(s) {
		panic(fmt.Sprintf("dvfs: setting %d out of range [0,%d)", s, l.Len()))
	}
	return l.points[s]
}

// ValidSetting reports whether s indexes a point in the ladder.
func (l *Ladder) ValidSetting(s Setting) bool { return s >= 0 && int(s) < len(l.points) }

// Fastest returns the setting of the highest-frequency point (always 0).
func (l *Ladder) Fastest() Setting { return 0 }

// Slowest returns the setting of the lowest-frequency point.
func (l *Ladder) Slowest() Setting { return Setting(len(l.points) - 1) }

// Frequencies returns the ladder's frequencies in Hz, fastest first.
func (l *Ladder) Frequencies() []float64 {
	out := make([]float64, len(l.points))
	for i, p := range l.points {
		out[i] = p.FrequencyHz
	}
	return out
}

// ClassSetting maps a canonical six-way phase class (Table 1) to its
// Table 2 operating point on the Pentium-M ladder: the more
// memory-bound the class, the slower the point. ClassUnknown gets the
// fastest setting — when the system knows nothing it must not hurt
// performance. The switch is exhaustive by construction (phasemonlint
// enforces it), so a new class cannot silently inherit a speed.
func ClassSetting(c phase.Class) Setting {
	switch c {
	case phase.ClassUnknown:
		return SpeedStep1500
	case phase.ClassCPUBound:
		return SpeedStep1500
	case phase.ClassMostlyCPU:
		return SpeedStep1400
	case phase.ClassBalanced:
		return SpeedStep1200
	case phase.ClassMildMemory:
		return SpeedStep1000
	case phase.ClassMemoryHeavy:
		return SpeedStep800
	case phase.ClassMemoryBound:
		return SpeedStep600
	}
	return SpeedStep1500
}

// Translation maps predicted phases to ladder settings; it is the
// paper's phase -> DVFS lookup table, defined at LKM initialization
// and reconfigurable for alternative management schemes (Section 6.3).
type Translation struct {
	ladder    *Ladder
	bySetting []Setting // indexed by int(phase)-1
}

// NewTranslation builds a translation for a classifier with numPhases
// phases. mapping[i] is the ladder setting for phase i+1.
func NewTranslation(l *Ladder, numPhases int, mapping []Setting) (*Translation, error) {
	if numPhases < 1 {
		return nil, fmt.Errorf("dvfs: translation needs at least one phase, got %d", numPhases)
	}
	if len(mapping) != numPhases {
		return nil, fmt.Errorf("dvfs: mapping has %d entries for %d phases", len(mapping), numPhases)
	}
	cp := make([]Setting, numPhases)
	for i, s := range mapping {
		if !l.ValidSetting(s) {
			return nil, fmt.Errorf("dvfs: mapping for phase %d references invalid setting %d", i+1, s)
		}
		cp[i] = s
	}
	return &Translation{ladder: l, bySetting: cp}, nil
}

// Identity returns the paper's Table 2 translation: phase i runs at
// ladder point i-1, so phase 1 (highly CPU-bound) gets the fastest
// point and phase N the slowest. It requires numPhases == ladder size.
func Identity(l *Ladder, numPhases int) (*Translation, error) {
	if numPhases != l.Len() {
		return nil, fmt.Errorf("dvfs: identity translation needs %d phases to match ladder, got %d", l.Len(), numPhases)
	}
	m := make([]Setting, numPhases)
	for i := range m {
		m[i] = Setting(i)
	}
	return NewTranslation(l, numPhases, m)
}

// Setting returns the ladder setting for a phase. Phases outside the
// table (including phase.None) fall back to the fastest setting: when
// the system knows nothing it must not hurt performance.
func (t *Translation) Setting(p phase.ID) Setting {
	i := int(p) - 1
	if i < 0 || i >= len(t.bySetting) {
		return t.ladder.Fastest()
	}
	return t.bySetting[i]
}

// Ladder returns the ladder this translation targets.
func (t *Translation) Ladder() *Ladder { return t.ladder }

// NumPhases returns the number of phases the table covers.
func (t *Translation) NumPhases() int { return len(t.bySetting) }

// Describe renders the translation as the paper's Table 2.
func (t *Translation) Describe(tab *phase.Table) string {
	var b strings.Builder
	for i := 0; i < len(t.bySetting); i++ {
		id := phase.ID(i + 1)
		lo, hi := tab.Range(id)
		var rangeStr string
		switch {
		case i == 0:
			rangeStr = fmt.Sprintf("< %.3f", hi)
		case math.IsInf(hi, 1):
			rangeStr = fmt.Sprintf("> %.3f", lo)
		default:
			rangeStr = fmt.Sprintf("[%.3f,%.3f)", lo, hi)
		}
		fmt.Fprintf(&b, "%-15s %d  %s\n", rangeStr, i+1, t.ladder.Point(t.bySetting[i]))
	}
	return b.String()
}

// SlowdownModel predicts the execution-time dilation T(f)/T(fmax) of
// code with the given Mem/Uop rate and workload core UPC when run at
// frequency f instead of fmax. Package cpusim provides the model used
// throughout this repo; dvfs takes it as a function to stay
// substrate-independent.
type SlowdownModel func(memPerUop, coreUPC, f, fmax float64) float64

// DeriveBounded computes a conservative translation (the paper's
// Section 6.3): for each phase it picks the slowest ladder setting
// whose predicted slowdown — at the phase's most CPU-bound corner and
// at the most pessimistic (highest) core UPC — stays within maxDeg
// (e.g. 0.05 for a 5% bound). The paper derives the same table from
// IPCxMEM measurements across the grid; we derive it from the timing
// model those measurements characterize.
func DeriveBounded(l *Ladder, tab *phase.Table, model SlowdownModel, maxDeg float64, worstCoreUPC float64) (*Translation, error) {
	if maxDeg < 0 {
		return nil, fmt.Errorf("dvfs: negative degradation bound %v", maxDeg)
	}
	fmax := l.Point(l.Fastest()).FrequencyHz
	mapping := make([]Setting, tab.NumPhases())
	for i := range mapping {
		id := phase.ID(i + 1)
		// The most CPU-bound point of a phase's range suffers the most
		// from slowing down, so bounding it bounds the whole phase.
		lo, _ := tab.Range(id)
		chosen := l.Fastest()
		for s := l.Fastest(); s <= l.Slowest(); s++ {
			f := l.Point(s).FrequencyHz
			slow := model(lo, worstCoreUPC, f, fmax)
			if slow <= 1+maxDeg {
				chosen = s
			} else {
				break
			}
		}
		mapping[i] = chosen
	}
	return NewTranslation(l, tab.NumPhases(), mapping)
}

// Controller actuates DVFS settings on the simulated platform. It
// tracks the current setting and charges a fixed transition latency
// (order of 10–100 µs on SpeedStep hardware) whenever the setting
// changes, so callers can account for actuation overhead.
type Controller struct {
	ladder            *Ladder
	current           Setting
	transitionLatency float64 // seconds per actual mode change

	transitions      int
	timeInTransition float64

	tel *telemetry.Hub
}

// DefaultTransitionLatency is the modeled cost of one SpeedStep
// voltage/frequency transition, in seconds.
const DefaultTransitionLatency = 50e-6

// NewController returns a controller positioned at the ladder's
// fastest setting.
func NewController(l *Ladder, transitionLatency float64) *Controller {
	if transitionLatency < 0 {
		transitionLatency = 0
	}
	return &Controller{ladder: l, current: l.Fastest(), transitionLatency: transitionLatency}
}

// NewControllerWithTelemetry is NewController with a hub attached at
// construction, so operating-point changes are counted from the first
// transition and no post-hoc setter is needed. A nil hub is the same
// as NewController.
func NewControllerWithTelemetry(l *Ladder, transitionLatency float64, h *telemetry.Hub) *Controller {
	c := NewController(l, transitionLatency)
	if h != nil {
		c.tel = h
		h.CurrentSetting.Set(float64(c.current))
	}
	return c
}

// Telemetry returns the hub the controller reports into, or nil.
func (c *Controller) Telemetry() *telemetry.Hub { return c.tel }

// Ladder returns the controller's ladder.
func (c *Controller) Ladder() *Ladder { return c.ladder }

// Current returns the active setting.
func (c *Controller) Current() Setting { return c.current }

// Point returns the active operating point.
func (c *Controller) Point() OperatingPoint { return c.ladder.Point(c.current) }

// Set switches to the requested setting, mirroring the handler logic
// of the paper's Figure 8: if the setting equals the current one, the
// mode-set registers are left untouched and no cost is incurred.
// It returns the transition cost in seconds.
func (c *Controller) Set(s Setting) (cost float64, err error) {
	if !c.ladder.ValidSetting(s) {
		return 0, fmt.Errorf("dvfs: invalid setting %d", s)
	}
	if s == c.current {
		return 0, nil
	}
	if c.tel != nil {
		c.tel.RecordDVFSChange(-1, int(c.current), int(s))
	}
	c.current = s
	c.transitions++
	c.timeInTransition += c.transitionLatency
	return c.transitionLatency, nil
}

// Reset returns the controller to the fastest setting and clears its
// statistics.
func (c *Controller) Reset() {
	c.current = c.ladder.Fastest()
	c.transitions = 0
	c.timeInTransition = 0
}

// Transitions returns how many actual mode changes occurred.
func (c *Controller) Transitions() int { return c.transitions }

// TimeInTransition returns the cumulative transition cost in seconds.
func (c *Controller) TimeInTransition() float64 { return c.timeInTransition }

// LadderFromFrequencies builds a ladder from a platform's frequency
// list (e.g. cpufreq's scaling_available_frequencies) by
// interpolating voltages linearly between the given endpoints — the
// practical bridge from a real machine's DVFS table (which does not
// expose voltages) to this package's power-aware modeling. Frequencies
// may arrive in any order; duplicates are rejected.
func LadderFromFrequencies(name string, freqsHz []float64, vMinV, vMaxV float64) (*Ladder, error) {
	if len(freqsHz) == 0 {
		return nil, fmt.Errorf("%w: no frequencies", ErrBadLadder)
	}
	if !(vMinV > 0) || !(vMaxV >= vMinV) {
		return nil, fmt.Errorf("dvfs: invalid voltage range [%v, %v]", vMinV, vMaxV)
	}
	sorted := make([]float64, len(freqsHz))
	copy(sorted, freqsHz)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	fMax, fMin := sorted[0], sorted[len(sorted)-1]
	points := make([]OperatingPoint, len(sorted))
	for i, f := range sorted {
		v := vMaxV
		if fMax > fMin {
			v = vMinV + (vMaxV-vMinV)*(f-fMin)/(fMax-fMin)
		}
		points[i] = OperatingPoint{FrequencyHz: f, VoltageV: v}
	}
	return NewLadder(name, points)
}

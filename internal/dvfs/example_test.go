package dvfs_test

import (
	"fmt"

	"phasemon/internal/dvfs"
	"phasemon/internal/phase"
)

func phaseID(p int) phase.ID { return phase.ID(p) }

// The paper's Table 2: translating phases to SpeedStep settings.
func ExampleIdentity() {
	ladder := dvfs.PentiumM()
	tr, err := dvfs.Identity(ladder, 6)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range []int{1, 6} {
		s := tr.Setting(phaseID(p))
		fmt.Printf("phase %d -> %s\n", p, ladder.Point(s))
	}
	// Output:
	// phase 1 -> (1500 MHz, 1484 mV)
	// phase 6 -> ( 600 MHz,  956 mV)
}

// The controller skips writes when the setting is unchanged, exactly
// like the paper's handler.
func ExampleController_Set() {
	c := dvfs.NewController(dvfs.PentiumM(), 50e-6)
	cost1, _ := c.Set(3)
	cost2, _ := c.Set(3) // same setting: free
	fmt.Printf("transition cost: %.0f µs, repeat cost: %.0f µs\n", cost1*1e6, cost2*1e6)
	fmt.Printf("transitions: %d\n", c.Transitions())
	// Output:
	// transition cost: 50 µs, repeat cost: 0 µs
	// transitions: 1
}

module phasemon

go 1.22
